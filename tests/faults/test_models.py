"""Unit tests for the pluggable fault-model zoo and the generalized spec."""

import pytest

from repro.faults.model import SINGLE_BIT_MODEL, FaultSpec
from repro.faults.models import (
    DEFAULT_MODEL,
    FaultModel,
    IntermittentBurst,
    MultiBitAdjacent,
    SingleBitTransient,
    StuckAt0,
    StuckAt1,
    get_model,
    model_names,
)
from repro.faults.sampling import generate_fault_list
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import BitOp, TargetStructure, structure_geometry

GEOMETRY = structure_geometry(TargetStructure.RF, MicroarchConfig().with_register_file(64))

ALL_MODELS = [
    SingleBitTransient(),
    MultiBitAdjacent(width=2),
    MultiBitAdjacent(width=4),
    IntermittentBurst(count=3, period=2),
    StuckAt0(duration=8),
    StuckAt1(duration=8),
]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_names_and_default():
    names = model_names()
    assert names == ("single", "multi-bit", "intermittent",
                     "stuck-at-0", "stuck-at-1")
    assert DEFAULT_MODEL == "single" == SINGLE_BIT_MODEL


def test_get_model_builds_each_registered_model():
    assert get_model("single") == SingleBitTransient()
    assert get_model("multi-bit", width=4) == MultiBitAdjacent(4)
    assert get_model("intermittent", count=5, period=3) == IntermittentBurst(5, 3)
    assert get_model("stuck-at-0", duration=7) == StuckAt0(7)
    assert get_model("stuck-at-1") == StuckAt1()


def test_get_model_rejects_unknown_name_and_params():
    with pytest.raises(ValueError, match="unknown fault model"):
        get_model("cosmic-ray")
    with pytest.raises(ValueError, match="does not accept"):
        get_model("single", width=2)
    with pytest.raises(ValueError, match="does not accept"):
        get_model("multi-bit", wdith=2)  # typo'd parameter name


def test_get_model_value_errors_keep_their_real_cause():
    """Constructor rejections surface as themselves, not as unknown params."""
    with pytest.raises(ValueError, match="width must be in 2..8"):
        get_model("multi-bit", width=99)
    with pytest.raises(ValueError, match="duration must be >= 1"):
        get_model("stuck-at-0", duration=0)


def test_get_model_on_parameterless_model_names_real_parameter_set():
    """No object.__init__ args/kwargs leakage; *args names are unknown."""
    with pytest.raises(ValueError, match=r"it accepts \[\]") as failure:
        get_model("single", width=2)
    assert "args" not in str(failure.value).replace("'width'", "")
    with pytest.raises(ValueError, match="does not accept"):
        get_model("single", args=1)


def test_model_equality_and_hash_by_value():
    assert MultiBitAdjacent(2) == MultiBitAdjacent(2)
    assert MultiBitAdjacent(2) != MultiBitAdjacent(4)
    assert hash(StuckAt0(8)) == hash(StuckAt0(8))
    assert StuckAt0(8) != StuckAt1(8)
    assert SingleBitTransient() != object()  # NotImplemented fallback


def test_model_describe_renders_params():
    assert SingleBitTransient().describe() == "single"
    assert MultiBitAdjacent(4).describe() == "multi-bit(width=4)"
    assert "count=3" in IntermittentBurst(3, 2).describe()


def test_model_parameter_validation():
    with pytest.raises(ValueError):
        MultiBitAdjacent(width=1)
    with pytest.raises(ValueError):
        MultiBitAdjacent(width=9)
    with pytest.raises(ValueError):
        IntermittentBurst(count=1)
    with pytest.raises(ValueError):
        IntermittentBurst(count=3, period=0)
    with pytest.raises(ValueError):
        StuckAt0(duration=0)


# ----------------------------------------------------------------------
# Fault construction
# ----------------------------------------------------------------------
def test_single_bit_faults_are_canonical():
    fault = SingleBitTransient().make_fault(7, TargetStructure.RF, 3, 20, 100)
    assert fault == FaultSpec(7, TargetStructure.RF, entry=3, bit=20, cycle=100)
    assert fault.is_single_transient
    assert fault.flips == ((3, 20),)
    assert fault.window == 1
    assert fault.last_active_cycle == 100
    assert fault.op is BitOp.FLIP
    assert fault.plan() == {100: [(TargetStructure.RF, 3, 20, BitOp.FLIP)]}
    assert fault.as_plan_entry() == (100, (TargetStructure.RF, 3, 20))


def test_multi_bit_burst_is_adjacent_within_entry():
    fault = MultiBitAdjacent(4).make_fault(0, TargetStructure.SQ, 5, 10, 50)
    assert fault.flips == ((5, 10), (5, 11), (5, 12), (5, 13))
    assert fault.flip_entries() == (5,)
    assert fault.window == 1
    assert not fault.is_single_transient
    plan = fault.plan()
    assert list(plan) == [50]
    assert len(plan[50]) == 4
    assert "flips=4" in fault.describe()


def test_multi_bit_anchor_range_shrinks():
    model = MultiBitAdjacent(4)
    assert model.bit_positions(GEOMETRY) == 64 - 3
    assert model.population(GEOMETRY, 100) == 64 * 61 * 100
    # A burst anchored at the last legal position stays inside the entry.
    fault = model.make_fault(0, TargetStructure.RF, 0, 60, 0)
    assert max(bit for _, bit in fault.flips) == 63


def test_intermittent_reapplies_over_window():
    fault = IntermittentBurst(count=3, period=4).make_fault(
        1, TargetStructure.RF, 2, 7, 30
    )
    assert fault.window == 9
    assert fault.period == 4
    assert fault.active_cycles() == [30, 34, 38]
    assert fault.last_active_cycle == 38
    plan = fault.plan()
    assert sorted(plan) == [30, 34, 38]
    assert all(flips == [(TargetStructure.RF, 2, 7, BitOp.FLIP)]
               for flips in plan.values())


def test_stuck_at_pins_every_window_cycle():
    fault = StuckAt1(duration=3).make_fault(2, TargetStructure.L1D, 9, 1, 10)
    assert fault.stuck_value == 1
    assert fault.op is BitOp.SET1
    assert fault.active_cycles() == [10, 11, 12]
    assert fault.plan()[11] == [(TargetStructure.L1D, 9, 1, BitOp.SET1)]
    zero = StuckAt0(duration=2).make_fault(3, TargetStructure.RF, 0, 0, 5)
    assert zero.op is BitOp.SET0
    assert "stuck=0" in zero.describe()


# ----------------------------------------------------------------------
# FaultSpec validation and payload round-trip
# ----------------------------------------------------------------------
def test_fault_spec_rejects_bad_shapes():
    with pytest.raises(ValueError, match="anchor"):
        FaultSpec(0, TargetStructure.RF, 1, 2, 3, flips=((9, 9), (1, 2)))
    with pytest.raises(ValueError, match="window"):
        FaultSpec(0, TargetStructure.RF, 1, 2, 3, window=0)
    with pytest.raises(ValueError, match="period"):
        FaultSpec(0, TargetStructure.RF, 1, 2, 3, period=0)
    with pytest.raises(ValueError, match="stuck_value"):
        FaultSpec(0, TargetStructure.RF, 1, 2, 3, stuck_value=2)


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.describe())
def test_payload_round_trip(model):
    fault = model.make_fault(11, TargetStructure.RF, 4, 13, 77)
    back = FaultSpec.from_payload(TargetStructure.RF, fault.to_payload())
    assert back == fault


def test_single_bit_payload_keeps_seed_four_tuple():
    fault = FaultSpec(5, TargetStructure.L1D, entry=8, bit=3, cycle=44)
    assert fault.to_payload() == (5, 8, 3, 44)


def test_base_model_make_fault_is_abstract():
    with pytest.raises(NotImplementedError):
        FaultModel().make_fault(0, TargetStructure.RF, 0, 0, 0)


def test_multi_bit_rejects_entry_too_narrow_for_burst():
    from repro.uarch.structures import StructureGeometry

    narrow = StructureGeometry(TargetStructure.RF, num_entries=4,
                               bits_per_entry=4)
    with pytest.raises(ValueError, match="cannot host"):
        MultiBitAdjacent(8).bit_positions(narrow)


def test_fault_spec_describe_variants():
    single = FaultSpec(1, TargetStructure.RF, 2, 3, 4)
    assert single.describe() == "fault#1 RF entry=2 bit=3 cycle=4"
    burst = MultiBitAdjacent(2).make_fault(2, TargetStructure.SQ, 1, 0, 9)
    assert "model=multi-bit" in burst.describe()
    glitch = IntermittentBurst(3, 2).make_fault(3, TargetStructure.RF, 0, 0, 0)
    assert "window=5" in glitch.describe() and "period=2" in glitch.describe()
    pinned = StuckAt1(4).make_fault(4, TargetStructure.L1D, 0, 0, 0)
    assert "stuck=1" in pinned.describe()


def test_fault_list_describe_counts_faults():
    from repro.faults.model import FaultList

    flist = FaultList(TargetStructure.RF,
                      [FaultSpec(0, TargetStructure.RF, 0, 0, 0)])
    assert flist.describe() == "FaultList(RF, 1 faults)"


# ----------------------------------------------------------------------
# Sampling integration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.describe())
def test_generate_fault_list_materialises_model(model):
    faults = generate_fault_list(GEOMETRY, total_cycles=500,
                                 sample_size=50, seed=1, model=model)
    assert len(faults) == 50
    faults.validate(GEOMETRY, total_cycles=500)
    for fault in faults:
        assert fault.model == model.name
        if isinstance(model, MultiBitAdjacent):
            assert len(fault.flips) == model.width
        if isinstance(model, IntermittentBurst):
            assert fault.window == (model.count - 1) * model.period + 1
        if isinstance(model, (StuckAt0, StuckAt1)):
            assert fault.window == model.duration


def test_model_draws_share_anchor_sequence_with_single_bit():
    """Same seed, same anchors: only the materialisation differs.

    (The anchor-bit range differs for multi-bit, so this holds exactly for
    models with full bit range — intermittent and stuck-at.)
    """
    single = generate_fault_list(GEOMETRY, 400, sample_size=30, seed=9)
    stuck = generate_fault_list(GEOMETRY, 400, sample_size=30, seed=9,
                                model=StuckAt1(duration=5))
    assert [(f.entry, f.bit, f.cycle) for f in single] == [
        (f.entry, f.bit, f.cycle) for f in stuck
    ]


def test_model_population_override_reaches_the_sampler():
    """A model's own population() is what sizes the statistical sample."""

    class TinyPopulation(SingleBitTransient):
        def population(self, geometry, total_cycles):
            return 50  # the formula caps the sample at the population

    shrunk = generate_fault_list(GEOMETRY, 1000, seed=0,
                                 error_margin=0.01, confidence=0.998,
                                 model=TinyPopulation())
    assert len(shrunk) == 50


def test_per_model_population_sizing_feeds_sample_size():
    wide = generate_fault_list(GEOMETRY, 1000, seed=0,
                               error_margin=0.05, confidence=0.95)
    narrow = generate_fault_list(GEOMETRY, 1000, seed=0,
                                 error_margin=0.05, confidence=0.95,
                                 model=MultiBitAdjacent(8))
    # The multi-bit population is smaller (57/64 of the anchors), and at
    # these loose margins the formula is population-sensitive.
    assert len(narrow) <= len(wide)
