"""Tests for golden capture, single-fault injection and campaign driving."""

import pytest

from repro.faults.campaign import ComprehensiveCampaign
from repro.faults.classification import FaultEffectClass
from repro.faults.golden import capture_golden
from repro.faults.injector import inject_fault
from repro.faults.model import FaultList, FaultSpec
from repro.faults.sampling import generate_fault_list
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg
from repro.uarch.config import MicroarchConfig
from repro.uarch.pipeline import TerminationKind
from repro.uarch.structures import TargetStructure, structure_geometry

from tests.conftest import build_loop_program


@pytest.fixture(scope="module")
def golden_loop():
    return capture_golden(build_loop_program(), MicroarchConfig().with_register_file(64))


def test_capture_golden_records_trace_and_commit_log(golden_loop):
    assert golden_loop.result.termination is TerminationKind.HALTED
    assert golden_loop.tracer is not None
    assert golden_loop.commit_log
    assert golden_loop.timeout_cycles() == 3 * golden_loop.cycles


def test_capture_golden_without_trace():
    record = capture_golden(build_loop_program(), MicroarchConfig(), trace=False)
    assert record.tracer is None
    assert record.commit_log == []


def test_capture_golden_raises_on_broken_workload():
    b = ProgramBuilder("broken")
    b.movi(Reg.RAX, 0)
    b.div(Reg.RAX, Reg.RAX, Reg.RAX)
    b.halt()
    with pytest.raises(RuntimeError):
        capture_golden(b.build(), MicroarchConfig())


def test_inject_fault_in_unused_entry_is_masked(golden_loop):
    fault = FaultSpec(0, TargetStructure.SQ, entry=15, bit=63, cycle=5)
    outcome = inject_fault(golden_loop, fault)
    assert outcome.effect is FaultEffectClass.MASKED
    assert outcome.result.termination is TerminationKind.HALTED


def test_inject_fault_simpoint_mode_sets_simpoint_effect(golden_loop):
    fault = FaultSpec(1, TargetStructure.RF, entry=60, bit=3, cycle=10)
    outcome = inject_fault(golden_loop, fault, simpoint_mode=True)
    assert outcome.simpoint_effect is not None


def test_campaign_runs_all_faults_and_memoises(golden_loop):
    geometry = structure_geometry(TargetStructure.RF, golden_loop.config)
    fault_list = generate_fault_list(geometry, golden_loop.cycles, sample_size=30, seed=9)
    campaign = ComprehensiveCampaign(golden_loop, fault_list)
    result = campaign.run()
    assert result.injections_performed == 30
    assert result.counts.total == 30
    assert set(result.outcomes) == {fault.fault_id for fault in fault_list}
    assert 0.0 <= result.avf <= 1.0
    assert result.wall_clock_seconds > 0
    # Re-running a subset reuses cached outcomes (same objects, no divergence).
    subset = campaign.run(list(fault_list)[:5])
    assert subset.injections_performed == 5
    for fault in list(fault_list)[:5]:
        assert subset.outcomes[fault.fault_id] == result.outcomes[fault.fault_id]
    assert len(campaign.cached_outcomes()) == 30


def test_campaign_progress_callback(golden_loop):
    geometry = structure_geometry(TargetStructure.RF, golden_loop.config)
    fault_list = generate_fault_list(geometry, golden_loop.cycles, sample_size=5, seed=2)
    campaign = ComprehensiveCampaign(golden_loop, fault_list)
    seen = []
    campaign.run(progress=lambda done, total: seen.append((done, total)))
    assert seen[-1] == (5, 5)
    assert len(seen) == 5


def test_campaign_classification_is_deterministic(golden_loop):
    geometry = structure_geometry(TargetStructure.RF, golden_loop.config)
    fault_list = generate_fault_list(geometry, golden_loop.cycles, sample_size=15, seed=5)
    first = ComprehensiveCampaign(golden_loop, fault_list).run()
    second = ComprehensiveCampaign(golden_loop, fault_list).run()
    assert first.counts.counts == second.counts.counts
    assert first.outcomes == second.outcomes
