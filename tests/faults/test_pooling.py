"""Pooled restore-CPU reuse across runs, shards and batches."""

from __future__ import annotations

from repro.faults.campaign import ComprehensiveCampaign
from repro.testing import shared_fault_list, shared_loop_golden


def _campaign(use_checkpoints=False, faults=24, seed=3):
    golden = shared_loop_golden(trace=True)
    fault_list = shared_fault_list(golden, sample_size=faults, seed=seed)
    return ComprehensiveCampaign(golden, fault_list,
                                 use_checkpoints=use_checkpoints), fault_list


def test_pool_is_created_once_per_campaign():
    campaign, _ = _campaign()
    cpu_a, state_a = campaign._restore_pool()
    cpu_b, state_b = campaign._restore_pool()
    assert cpu_a is cpu_b
    assert state_a is state_b


def test_run_and_shards_share_one_pooled_cpu():
    campaign, fault_list = _campaign()
    faults = list(fault_list)
    first = campaign.run_shard(faults[:8])
    pooled_cpu = campaign._pooled_cpu
    assert pooled_cpu is not None, "shard run must build the pool"
    # Consecutive shard calls (and a full run) keep reusing the same CPU.
    second = campaign.run_shard(faults[8:16])
    assert campaign._pooled_cpu is pooled_cpu
    campaign.run()
    assert campaign._pooled_cpu is pooled_cpu
    assert set(first) | set(second) <= set(f.fault_id for f in faults)


def test_pooled_outcomes_match_unpooled_reference():
    """The pooled cold path restores the captured cycle-0 state per fault;
    outcomes must match a second campaign injecting the same list."""
    campaign, fault_list = _campaign(faults=30, seed=11)
    pooled = campaign.run()

    reference, _ = _campaign(faults=30, seed=11)
    assert reference.run().outcomes == pooled.outcomes


def test_checkpointed_campaign_reuses_pool_across_batches():
    campaign, _ = _campaign(use_checkpoints=True)
    result = campaign.run()
    pooled_cpu = campaign._pooled_cpu
    assert pooled_cpu is not None
    # Cold reference for the same faults.
    reference, _ = _campaign(use_checkpoints=False)
    assert reference.run().outcomes == result.outcomes
