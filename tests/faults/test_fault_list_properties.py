"""Seeded property-based tests for :class:`FaultList` invariants.

Hypothesis generates fault lists across *all* fault models (derandomized
by the fixed per-test seeds hypothesis derives from the test name, so CI
and local runs explore the same cases) and checks the invariants the
campaign machinery leans on: subsets preserve order, ``validate`` names
the offending fault id, duplicate ids are rejected at construction and
append time, and every list round-trips bit-identically through the
cluster shard payload format.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.shards import FaultShard, shard_faults
from repro.faults.model import FaultList, FaultSpec
from repro.faults.models import (
    IntermittentBurst,
    MultiBitAdjacent,
    SingleBitTransient,
    StuckAt0,
    StuckAt1,
)
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure, structure_geometry

CONFIG = MicroarchConfig().with_register_file(64).with_store_queue(16).with_l1d(16)

MODEL_STRATEGY = st.one_of(
    st.just(SingleBitTransient()),
    st.integers(min_value=2, max_value=8).map(MultiBitAdjacent),
    st.tuples(st.integers(2, 5), st.integers(1, 6)).map(
        lambda cp: IntermittentBurst(count=cp[0], period=cp[1])
    ),
    st.integers(min_value=1, max_value=64).map(StuckAt0),
    st.integers(min_value=1, max_value=64).map(StuckAt1),
)

STRUCTURE_STRATEGY = st.sampled_from(list(TargetStructure))

TOTAL_CYCLES = 10_000


@st.composite
def fault_lists(draw):
    """A fault list of one random model over one random structure."""
    model = draw(MODEL_STRATEGY)
    structure = draw(STRUCTURE_STRATEGY)
    geometry = structure_geometry(structure, CONFIG)
    count = draw(st.integers(min_value=1, max_value=30))
    faults = []
    for fault_id in range(count):
        entry = draw(st.integers(0, geometry.num_entries - 1))
        bit = draw(st.integers(0, model.bit_positions(geometry) - 1))
        cycle = draw(st.integers(0, TOTAL_CYCLES - 1))
        faults.append(model.make_fault(fault_id, structure, entry, bit, cycle))
    return FaultList(structure, faults), geometry


@settings(max_examples=40, deadline=None)
@given(data=fault_lists(), wanted=st.sets(st.integers(0, 29)))
def test_subset_preserves_order_and_membership(data, wanted):
    fault_list, _ = data
    subset = fault_list.subset(wanted)
    ids = [fault.fault_id for fault in subset]
    # Original order, no duplicates, exactly the requested intersection.
    assert ids == sorted(ids)
    assert set(ids) == wanted & {fault.fault_id for fault in fault_list}
    by_id = fault_list.by_id()
    for fault in subset:
        assert fault is by_id[fault.fault_id]


@settings(max_examples=40, deadline=None)
@given(data=fault_lists())
def test_validate_accepts_model_constructed_lists(data):
    fault_list, geometry = data
    fault_list.validate(geometry, total_cycles=TOTAL_CYCLES)


@settings(max_examples=40, deadline=None)
@given(data=fault_lists(), bad_id=st.integers(min_value=1000, max_value=9999))
def test_validate_names_the_offending_fault_id(data, bad_id):
    fault_list, geometry = data
    rogue = FaultSpec(bad_id, fault_list.structure,
                      entry=geometry.num_entries + 5, bit=0, cycle=0)
    fault_list.append(rogue)
    with pytest.raises(ValueError) as failure:
        fault_list.validate(geometry, total_cycles=TOTAL_CYCLES)
    assert f"fault#{bad_id}" in str(failure.value)


@settings(max_examples=40, deadline=None)
@given(data=fault_lists())
def test_duplicate_fault_ids_rejected_on_append_and_construction(data):
    fault_list, _ = data
    first = fault_list[0]
    with pytest.raises(ValueError, match="duplicate fault id"):
        fault_list.append(first)
    with pytest.raises(ValueError, match="duplicate fault id"):
        FaultList(fault_list.structure, list(fault_list) + [first])
    # The failed append must not have corrupted the list.
    assert len(fault_list.by_id()) == len(fault_list)


@settings(max_examples=40, deadline=None)
@given(data=fault_lists(), shard_size=st.integers(min_value=1, max_value=40))
def test_round_trip_through_cluster_shard_payloads(data, shard_size):
    """shard -> to_dict -> JSON -> from_dict -> fault_specs is lossless."""
    fault_list, _ = data
    shards = shard_faults("deadbeef0123", fault_list, timeline=None,
                          shard_size=shard_size)
    assert sum(len(shard) for shard in shards) == len(fault_list)
    by_id = fault_list.by_id()
    for shard in shards:
        wire = json.loads(json.dumps(shard.to_dict()))
        back = FaultShard.from_dict(wire)
        assert back == shard
        assert back.shard_id() == shard.shard_id()
        for fault in back.fault_specs():
            assert fault == by_id[fault.fault_id]
