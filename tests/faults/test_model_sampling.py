"""Tests for the fault model and the Leveugle statistical sampling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.model import FaultList, FaultSpec
from repro.faults.sampling import (
    BASELINE_CONFIDENCE,
    BASELINE_ERROR_MARGIN,
    SCALING_ERROR_MARGIN,
    SamplingPlan,
    exhaustive_population,
    generate_fault_list,
    required_sample_size,
)
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure, structure_geometry


def _geometry(structure=TargetStructure.RF, regs=64):
    return structure_geometry(structure, MicroarchConfig().with_register_file(regs))


def test_fault_spec_byte_and_plan_entry():
    fault = FaultSpec(3, TargetStructure.RF, entry=7, bit=20, cycle=100)
    assert fault.byte == 2
    cycle, flip = fault.as_plan_entry()
    assert cycle == 100
    assert flip == (TargetStructure.RF, 7, 20)
    assert "RF" in fault.describe()


def test_fault_list_rejects_mixed_structures():
    fault = FaultSpec(0, TargetStructure.SQ, 0, 0, 0)
    with pytest.raises(ValueError):
        FaultList(TargetStructure.RF, [fault])
    flist = FaultList(TargetStructure.RF)
    with pytest.raises(ValueError):
        flist.append(fault)


def test_fault_list_subset_and_by_id():
    faults = [FaultSpec(i, TargetStructure.RF, i, 0, i) for i in range(10)]
    flist = FaultList(TargetStructure.RF, faults)
    subset = flist.subset([2, 5])
    assert len(subset) == 2
    assert [f.fault_id for f in subset] == [2, 5]
    assert flist.by_id()[7].cycle == 7
    assert flist[3].fault_id == 3


def test_fault_list_validate_bounds():
    geometry = _geometry()
    good = FaultList(TargetStructure.RF, [FaultSpec(0, TargetStructure.RF, 1, 1, 1)])
    good.validate(geometry, total_cycles=10)
    bad = FaultList(TargetStructure.RF, [FaultSpec(0, TargetStructure.RF, 999, 1, 1)])
    with pytest.raises(ValueError):
        bad.validate(geometry, total_cycles=10)


def test_paper_baseline_sample_sizes():
    """The paper's 2000 / 60K / 600K fault counts follow from the formula."""
    population = 256 * 64 * 100_000_000   # 256 64-bit registers, 100M cycles
    assert required_sample_size(population, 0.0288, 0.99) == pytest.approx(2000, rel=0.05)
    assert required_sample_size(
        population, BASELINE_ERROR_MARGIN, BASELINE_CONFIDENCE
    ) == pytest.approx(60_000, rel=0.05)
    # The paper rounds the fault count to 600,000 rather than the margin
    # (footnote 5), so the formula output sits slightly above it.
    assert required_sample_size(
        population, SCALING_ERROR_MARGIN, BASELINE_CONFIDENCE
    ) == pytest.approx(600_000, rel=0.15)


def test_sample_size_bounded_by_population():
    assert required_sample_size(50, 0.01, 0.998) == 50


def test_sample_size_monotone_in_error_margin():
    population = 10 ** 12
    sizes = [required_sample_size(population, margin, 0.99)
             for margin in (0.05, 0.02, 0.01, 0.005)]
    assert sizes == sorted(sizes)


def test_sample_size_rejects_bad_arguments():
    with pytest.raises(ValueError):
        required_sample_size(0, 0.01, 0.99)
    with pytest.raises(ValueError):
        required_sample_size(100, 1.5, 0.99)
    with pytest.raises(ValueError):
        required_sample_size(100, 0.01, 1.5)


def test_sampling_plan_describes_population():
    geometry = _geometry()
    plan = SamplingPlan(
        structure=TargetStructure.RF,
        num_entries=geometry.num_entries,
        bits_per_entry=geometry.bits_per_entry,
        total_cycles=1000,
    )
    assert plan.population == 64 * 64 * 1000
    assert plan.sample_size > 0
    assert "RF" in plan.describe()
    fixed = SamplingPlan(
        structure=TargetStructure.RF, num_entries=4, bits_per_entry=64,
        total_cycles=10, sample_size_override=17,
    )
    assert fixed.sample_size == 17


def test_exhaustive_population():
    geometry = _geometry()
    assert exhaustive_population(geometry, 1000) == 64 * 64 * 1000


def test_generate_fault_list_is_deterministic_and_in_bounds():
    geometry = _geometry()
    first = generate_fault_list(geometry, total_cycles=500, sample_size=200, seed=3)
    second = generate_fault_list(geometry, total_cycles=500, sample_size=200, seed=3)
    different = generate_fault_list(geometry, total_cycles=500, sample_size=200, seed=4)
    assert len(first) == 200
    assert [(f.entry, f.bit, f.cycle) for f in first] == [
        (f.entry, f.bit, f.cycle) for f in second
    ]
    assert [(f.entry, f.bit, f.cycle) for f in first] != [
        (f.entry, f.bit, f.cycle) for f in different
    ]
    first.validate(geometry, total_cycles=500)
    assert [f.fault_id for f in first] == list(range(200))


def test_generate_fault_list_rejects_zero_cycles():
    with pytest.raises(ValueError):
        generate_fault_list(_geometry(), total_cycles=0, sample_size=10)


@settings(max_examples=25)
@given(
    margin=st.floats(min_value=0.001, max_value=0.2),
    confidence=st.floats(min_value=0.8, max_value=0.999),
    population=st.integers(min_value=1000, max_value=10 ** 14),
)
def test_sample_size_properties(margin, confidence, population):
    size = required_sample_size(population, margin, confidence)
    assert 1 <= size <= population
    # Higher confidence at the same margin never shrinks the sample.
    assert required_sample_size(population, margin, min(0.999, confidence + 0.0005)) >= size
