"""Tests for fault-effect classification and classification counters."""

import pytest
from hypothesis import given, strategies as st

from repro.faults.classification import (
    ClassificationCounts,
    FaultEffectClass,
    SimpointEffectClass,
    classify_outcome,
    classify_simpoint_outcome,
    distribution_distance,
    per_class_inaccuracy,
)
from repro.uarch.pipeline import SimulationResult, TerminationKind
from repro.uarch.stats import SimStats


def _result(termination=TerminationKind.HALTED, output=(1, 2), exceptions=0,
            memory_hash=7):
    return SimulationResult(
        termination=termination,
        output=list(output),
        cycles=100,
        committed_instructions=50,
        committed_uops=80,
        exceptions=exceptions,
        stats=SimStats(),
        memory_hash=memory_hash,
    )


GOLDEN = _result()


def test_masked_when_identical():
    assert classify_outcome(GOLDEN, _result()) is FaultEffectClass.MASKED


def test_sdc_when_output_differs():
    assert classify_outcome(GOLDEN, _result(output=(1, 3))) is FaultEffectClass.SDC


def test_due_when_extra_exceptions_only():
    assert classify_outcome(GOLDEN, _result(exceptions=2)) is FaultEffectClass.DUE


def test_sdc_takes_priority_over_due():
    faulty = _result(output=(9,), exceptions=5)
    assert classify_outcome(GOLDEN, faulty) is FaultEffectClass.SDC


def test_timeout_and_deadlock_map_to_timeout():
    assert classify_outcome(GOLDEN, _result(TerminationKind.TIMEOUT)) is FaultEffectClass.TIMEOUT
    assert classify_outcome(GOLDEN, _result(TerminationKind.DEADLOCK)) is FaultEffectClass.TIMEOUT


def test_crash_and_assert():
    assert classify_outcome(GOLDEN, _result(TerminationKind.CRASH)) is FaultEffectClass.CRASH
    assert classify_outcome(GOLDEN, _result(TerminationKind.ASSERT)) is FaultEffectClass.ASSERT


def test_simpoint_classification_masked_vs_unknown():
    golden = _result(TerminationKind.INTERVAL_END)
    same = _result(TerminationKind.INTERVAL_END)
    assert classify_simpoint_outcome(golden, same) is SimpointEffectClass.MASKED
    latent = _result(TerminationKind.INTERVAL_END, memory_hash=99)
    assert classify_simpoint_outcome(golden, latent) is SimpointEffectClass.UNKNOWN
    crashed = _result(TerminationKind.CRASH)
    assert classify_simpoint_outcome(golden, crashed) is SimpointEffectClass.CRASH
    due = _result(TerminationKind.INTERVAL_END, exceptions=3)
    assert classify_simpoint_outcome(golden, due) is SimpointEffectClass.DUE
    asserted = _result(TerminationKind.ASSERT)
    assert classify_simpoint_outcome(golden, asserted) is SimpointEffectClass.ASSERT


def test_counts_add_merge_and_fractions():
    counts = ClassificationCounts.empty()
    counts.add(FaultEffectClass.MASKED, 3)
    counts.add(FaultEffectClass.SDC)
    assert counts.total == 4
    assert counts.fraction(FaultEffectClass.MASKED) == pytest.approx(0.75)
    assert counts.avf() == pytest.approx(0.25)
    other = ClassificationCounts.empty()
    other.add(FaultEffectClass.SDC, 2)
    merged = counts.merge(other)
    assert merged.count(FaultEffectClass.SDC) == 3
    assert counts.count(FaultEffectClass.SDC) == 1   # merge is pure
    assert sum(merged.fractions().values()) == pytest.approx(1.0)


def test_counts_empty_taxonomy_and_table_row():
    counts = ClassificationCounts.empty(SimpointEffectClass)
    assert set(counts.counts) == {cls.value for cls in SimpointEffectClass}
    counts.add(SimpointEffectClass.UNKNOWN, 4)
    row = counts.as_table_row(SimpointEffectClass)
    assert row["Unknown"] == "100.00%"
    assert counts.avf() == 0.0 or counts.avf() >= 0.0  # defined even off-taxonomy


def test_counts_zero_total_fractions():
    counts = ClassificationCounts.empty()
    assert counts.avf() == 0.0
    assert counts.fraction(FaultEffectClass.SDC) == 0.0
    assert all(v == 0.0 for v in counts.fractions().values())


def test_distribution_distance_and_inaccuracy():
    a = ClassificationCounts.empty()
    b = ClassificationCounts.empty()
    a.add(FaultEffectClass.MASKED, 90)
    a.add(FaultEffectClass.SDC, 10)
    b.add(FaultEffectClass.MASKED, 80)
    b.add(FaultEffectClass.SDC, 20)
    assert distribution_distance(a, b) == pytest.approx(10.0)
    per_class = per_class_inaccuracy(a, b)
    assert per_class["SDC"] == pytest.approx(10.0)
    assert per_class["DUE"] == 0.0


@given(st.lists(st.sampled_from(list(FaultEffectClass)), min_size=1, max_size=60))
def test_counts_total_matches_additions(effects):
    counts = ClassificationCounts.empty()
    for effect in effects:
        counts.add(effect)
    assert counts.total == len(effects)
    assert 0.0 <= counts.avf() <= 1.0
    assert sum(counts.fractions().values()) == pytest.approx(1.0)
