"""Injector edge cases for the generalized fault models.

The scenarios here are the awkward corners the model zoo opens up: active
windows outliving the program, flip sites whose owning entry is freed (or
was never valid) mid-window, and stuck-at pins on cache lines that are
invalid for the whole run.  Each case must complete, classify, and stay
bit-identical between the cold-start and checkpoint fast-forward paths.
"""

from __future__ import annotations

import pytest

from repro.faults.classification import FaultEffectClass
from repro.faults.golden import capture_golden
from repro.faults.injector import inject_fault
from repro.faults.model import FaultSpec
from repro.faults.models import IntermittentBurst, StuckAt0, StuckAt1
from repro.testing import build_loop_program, small_config
from repro.uarch.structures import TargetStructure, structure_geometry


@pytest.fixture(scope="module")
def golden():
    return capture_golden(build_loop_program(30), small_config(), trace=False)


@pytest.fixture(scope="module")
def golden_warm():
    return capture_golden(build_loop_program(30), small_config(), trace=False,
                          checkpoint_interval=24)


def both_paths(golden_cold, golden_warm, fault):
    cold = inject_fault(golden_cold, fault)
    warm = inject_fault(golden_warm, fault, fast_forward=True)
    assert cold.effect == warm.effect, fault.describe()
    for name in cold.result.__dataclass_fields__:
        assert getattr(cold.result, name) == getattr(warm.result, name), (
            f"{fault.describe()}: SimulationResult.{name} differs"
        )
    return cold


def test_stuck_at_window_extending_past_program_end(golden, golden_warm):
    """A pin that outlives the run: applications after halt never fire."""
    fault = StuckAt1(duration=10 * golden.cycles).make_fault(
        0, TargetStructure.RF, entry=60, bit=63, cycle=golden.cycles - 5
    )
    assert fault.last_active_cycle > golden.cycles
    outcome = both_paths(golden, golden_warm, fault)
    assert outcome.effect in set(FaultEffectClass)
    assert outcome.result.cycles <= golden.timeout_cycles()


def test_intermittent_reapplications_past_program_end(golden, golden_warm):
    """Late re-flips of an intermittent burst simply never land."""
    fault = IntermittentBurst(count=4, period=golden.cycles).make_fault(
        0, TargetStructure.RF, entry=2, bit=0, cycle=golden.cycles - 2
    )
    outcome = both_paths(golden, golden_warm, fault)
    assert outcome.effect in set(FaultEffectClass)


def test_window_opening_exactly_on_last_cycle(golden, golden_warm):
    """Anchor on the final golden cycle is legal (validate allows it)."""
    geometry = structure_geometry(TargetStructure.RF, golden.config)
    fault = StuckAt0(duration=3).make_fault(
        0, TargetStructure.RF, entry=0, bit=0, cycle=golden.cycles - 1
    )
    from repro.faults.model import FaultList
    flist = FaultList(TargetStructure.RF, [fault])
    flist.validate(geometry, total_cycles=golden.cycles)
    both_paths(golden, golden_warm, fault)


def test_stuck_at_on_entry_freed_mid_window(golden, golden_warm):
    """A store-queue slot's latch pinned across allocate/free churn.

    SQ slots are freed at drain but their data latches persist; a window
    spanning many allocate/free generations must keep re-pinning without
    tripping any simulator assertion.
    """
    fault = StuckAt1(duration=max(64, golden.cycles // 2)).make_fault(
        0, TargetStructure.SQ, entry=3, bit=17, cycle=5
    )
    outcome = both_paths(golden, golden_warm, fault)
    assert outcome.effect in set(FaultEffectClass)


def test_stuck_at_on_invalid_cache_line(golden, golden_warm):
    """Pinning a bit of a line the program never fills stays masked.

    The loop program touches only the bottom of the L1D index space; the
    last entry of the top set stays invalid for the whole run, so a pin
    there must classify as Masked — and must not crash the cache model.
    """
    geometry = structure_geometry(TargetStructure.L1D, golden.config)
    fault = StuckAt1(duration=golden.cycles).make_fault(
        0, TargetStructure.L1D, entry=geometry.num_entries - 1, bit=8, cycle=0
    )
    outcome = both_paths(golden, golden_warm, fault)
    assert outcome.effect is FaultEffectClass.MASKED


def test_flip_window_covering_whole_run_still_terminates(golden, golden_warm):
    """An intermittent fault glitching every other cycle for the whole run."""
    fault = FaultSpec(
        0, TargetStructure.RF, entry=1, bit=4, cycle=0,
        model="intermittent", window=golden.cycles, period=2,
    )
    outcome = both_paths(golden, golden_warm, fault)
    assert outcome.result.cycles <= golden.timeout_cycles()


def test_multi_entry_flip_set_is_applied_and_prefiltered(golden, golden_warm):
    """A hand-built spec spanning two entries exercises the multi-site
    reconvergence pre-filter (every distinct entry checked)."""
    fault = FaultSpec(
        0, TargetStructure.RF, entry=58, bit=0, cycle=10,
        model="multi-bit", flips=((58, 0), (59, 0)),
    )
    assert fault.flip_entries() == (58, 59)
    outcome = both_paths(golden, golden_warm, fault)
    assert outcome.effect in set(FaultEffectClass)
