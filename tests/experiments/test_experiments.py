"""Tests for the experiment harness (tiny scale, checking structure not values)."""

import pytest

from repro.experiments import runner
from repro.experiments.common import ExperimentContext, ExperimentScale, structure_configs
from repro.experiments import (
    fig08_speedup_rf,
    fig11_estimation_time,
    fig13_scaling,
    fig15_accuracy_final,
    sec445_theory,
    table1_config,
    table2_classification,
    table3_exhaustive,
)
from repro.uarch.structures import TargetStructure

TINY = ExperimentScale(
    mibench=("sha", "qsort"),
    spec=("gcc",),
    workload_scale=1,
    initial_faults=3_000,
    scaling_pair=(600, 3_000),
    accuracy_faults=50,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(TINY)


def test_experiment_scales_presets():
    assert ExperimentScale.quick().initial_faults < ExperimentScale.default().initial_faults
    assert ExperimentScale.paper().initial_faults == 60_000
    assert ExperimentScale.paper().scaling_initial_faults == 600_000
    assert len(ExperimentScale.full().mibench) == 10
    assert ExperimentScale.default().with_faults(10).initial_faults == 10


def test_structure_configs_respect_scale():
    scale = ExperimentScale(rf_sizes=(256, 64), sq_sizes=(16,), l1d_sizes_kb=(32,))
    rf = structure_configs(TargetStructure.RF, scale)
    assert [label for label, _ in rf] == ["256regs", "64regs"]
    sq = structure_configs(TargetStructure.SQ, scale)
    assert sq[0][1].store_queue_entries == 16


def test_context_caches_programs_and_goldens(context):
    program_a = context.program("sha")
    program_b = context.program("sha")
    assert program_a is program_b
    config = structure_configs(TargetStructure.RF, context.scale)[0][1]
    golden_a = context.golden("sha", config)
    golden_b = context.golden("sha", config)
    assert golden_a is golden_b


def test_grouping_produces_reduction(context):
    config = structure_configs(TargetStructure.RF, context.scale)[0][1]
    grouped = context.grouping("sha", TargetStructure.RF, config)
    assert grouped.initial_faults == TINY.initial_faults
    assert grouped.total_speedup > 1.0


def test_table1_and_table3_render(context):
    assert "Pipeline" in table1_config.run().render()
    table3 = table3_exhaustive.run(context=context)
    rendered = table3.render()
    assert "MeRLiN" in rendered and "Relyzer" in rendered
    merlin_row, relyzer_row = table3.to_dicts()
    assert float(merlin_row["gain"]) > float(relyzer_row["gain"])


def test_fig08_speedup_structure(context):
    report = fig08_speedup_rf.run(context=context)
    assert "ACE-like speedup" in report.series
    averages = report.averages()
    assert averages["Total speedup"] >= averages["ACE-like speedup"] >= 1.0


def test_fig11_reports_reduction(context):
    table = fig11_estimation_time.run(context=context)
    rows = table.to_dicts()
    assert rows[-1]["structure"] == "Final Estimation Time"
    for row in rows:
        assert row["baseline months"] >= row["MeRLiN months"]


def test_fig13_speedup_scales_with_list_size(context):
    table = fig13_scaling.run(context=context)
    list_growth = TINY.scaling_pair[1] / TINY.scaling_pair[0]
    rows = table.to_dicts()
    for row in rows:
        # Injections never grow faster than the fault list itself.
        assert row["injection scaling"] <= list_growth + 0.5
        assert row["speedup(large)"] > 0
    # The register file is dense enough at this scale for the paper's trend
    # (a larger list yields a larger final speedup) to be visible.
    rf_row = next(row for row in rows if row["structure"] == "RF")
    assert rf_row["speedup scaling"] >= 1.0


def test_accuracy_study_and_fig15(context):
    config_label, config = structure_configs(TargetStructure.RF, context.scale)[0]
    study = context.accuracy_study("sha", TargetStructure.RF, config, config_label)
    assert study.ace_sample_verified
    assert study.baseline_full.total == TINY.accuracy_faults
    assert study.merlin.counts_final.total == TINY.accuracy_faults
    # Cached: a second call returns the same object without re-simulating.
    again = context.accuracy_study("sha", TargetStructure.RF, config, config_label)
    assert again is study
    table = fig15_accuracy_final.run(context=context)
    rows = table.to_dicts()
    assert any(row["method"] == "MeRLiN" for row in rows)
    assert any(row["method"] == "baseline" for row in rows)


def test_table2_counts_total_matches_accuracy_faults(context):
    table = table2_classification.run(context=context)
    observed = sum(int(row[table.columns[2]]) for row in table.to_dicts())
    assert observed == TINY.accuracy_faults


def test_sec445_theory_reports_zero_mean_difference(context):
    table = sec445_theory.run(context=context)
    for row in table.to_dicts():
        assert float(row["mean difference"]) == pytest.approx(0.0, abs=1e-9)


def test_runner_registry_and_single_run(context):
    assert set(runner.EXPERIMENTS) >= {
        "table1", "table2", "table3", "table4",
        "fig06", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
        "fig13", "fig14", "fig15", "fig16", "fig17", "sec445",
    }
    text = runner.run_experiment("table1")
    assert "Table 1" in text


def test_runner_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        runner.main(["not_an_experiment"])
