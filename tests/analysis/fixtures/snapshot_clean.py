"""Snapshot-contract conformance: every class here must lint clean."""


def capture(obj):
    return (obj.value, obj.extra)


def apply_state(obj, state):
    obj.value, obj.extra = state


class FullyCovered:
    """All post-init mutations are visible to snapshot/restore."""

    def __init__(self):
        self.value = 0
        self.extra = ""

    def snapshot(self):
        return (self.value, self.extra)

    def restore(self, state):
        self.value, self.extra = state

    def bump(self):
        self.value += 1

    def label(self, text):
        self.extra = text


class CoveredViaHelper:
    """Coverage may be indirect: restore() delegates to a self-method."""

    def __init__(self):
        self.entries = []

    def snapshot(self):
        return tuple(self.entries)

    def restore(self, state):
        self._reset(state)

    def _reset(self, state):
        self.entries = list(state)

    def push(self, item):
        self.entries = self.entries + [item]


class WithTransient:
    """A derived cache opts out of the contract with an annotation."""

    def __init__(self):
        self.value = 0
        self._memo = None  # repro-lint: transient -- derived cache, rebuilt on demand

    def snapshot(self):
        return (self.value,)

    def restore(self, state):
        (self.value,) = state

    def bump(self):
        self.value += 1
        self._memo = None


class Delegating:
    """snapshot() handing self to a module-level capture fn is exempt."""

    def __init__(self):
        self.value = 0
        self.extra = ""

    def snapshot(self):
        return capture(self)

    def restore(self, state):
        apply_state(self, state)

    def scribble(self):
        self.anything_goes = 1


class DirtyClean:
    """Every tracked-state write marks the dirty set, directly or not."""

    def __init__(self):
        self.table = {}
        self._dirty = None

    def begin_dirty_tracking(self):
        self._dirty = set()

    def drain_dirty(self):
        drained = self._dirty
        self._dirty = set()
        return drained if drained is not None else set()

    def snapshot(self):
        return (dict(self.table),)

    def restore(self, state):
        (self.table,) = state
        self._dirty = None

    def write(self, key, value):
        self.table[key] = value
        if self._dirty is not None:
            self._dirty.add(key)

    def clear(self, key):
        self.table[key] = None
        self._mark(key)

    def _mark(self, key):
        if self._dirty is not None:
            self._dirty.add(key)
