"""Determinism-conformant code: must lint clean with every scope open."""

from numpy.random import default_rng


def seeded_draw(seed):
    rng = default_rng(seed)
    return rng.integers(0, 10)


def sorted_iteration(tags):
    seen = set(tags)
    return [tag * 2 for tag in sorted(seen)]


def sorted_drain(component):
    return {index: index * 2 for index in sorted(component.drain_dirty())}


def membership_is_fine(tags, candidate):
    seen = set(tags)
    return candidate in seen


def integer_gate(count):
    return count == 3


def tolerant_compare(ratio, expected):
    return abs(ratio - expected) < 1e-9
