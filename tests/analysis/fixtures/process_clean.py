"""Process-safe code: must lint clean with every scope open."""

import os
from dataclasses import dataclass


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


@dataclass(frozen=True)
class FrozenPayload:
    shard_id: str


def append_record(stream, record):
    stream.write(record)
    stream.flush()
    os.fsync(stream.fileno())


def commit_durably(fs, temp_name, target, parent):
    fs.replace(temp_name, target)
    fs.fsync_dir(parent)


def scrub_label(label):
    return label.replace("-", "_")


def module_level_worker(payload):
    return payload


def launch(pool, spec):
    return pool.submit(module_level_worker, spec)
