"""Intentional process-safety violations (never imported, only linted)."""

from dataclasses import dataclass


def collect(item, bucket=[]):  # expect: proc-mutable-default
    bucket.append(item)
    return bucket


def keyword_only(item, *, cache={}):  # expect: proc-mutable-default
    cache[item] = True
    return cache


@dataclass  # expect: proc-frozen-payload
class BarePayload:
    shard_id: str


@dataclass(frozen=False)  # expect: proc-frozen-payload
class ThawedPayload:
    shard_id: str


def append_record(stream, record):
    stream.write(record)  # expect: proc-fsync


def commit_without_dirsync(fs, temp_name, target):
    fs.replace(temp_name, target)  # expect: proc-dirsync


def commit_os_replace(temp_name, target):
    import os

    os.replace(temp_name, target)  # expect: proc-dirsync


def launch_lambda(pool, items):
    return pool.map(lambda item: item * 2, items)  # expect: proc-entry-picklable


def launch_nested(pool, spec):
    def worker(payload):
        return payload

    return pool.submit(worker, spec)  # expect: proc-entry-picklable
