"""Intentional determinism violations (never imported, only linted)."""

import os
import random
import time
from time import perf_counter

import numpy as np


def wallclock():
    return time.time()  # expect: det-wallclock


def wallclock_from_import():
    return perf_counter()  # expect: det-wallclock


def unseeded():
    return random.random()  # expect: det-random


def unseeded_numpy():
    return np.random.randint(0, 10)  # expect: det-random


def env_read():
    return os.environ["REPRO_SEED"]  # expect: det-environ


def env_get():
    return os.getenv("REPRO_SEED")  # expect: det-environ


def object_key(entry):
    return id(entry)  # expect: det-id


def float_gate(ratio):
    return ratio == 1.5  # expect: det-float-eq


def float_call_gate(ratio, text):
    return ratio != float(text)  # expect: det-float-eq


def iterate_set(tags):
    seen = set(tags)
    return [tag * 2 for tag in seen]  # expect: det-set-iter


def loop_union(a, b):
    total = 0
    for item in set(a) | set(b):  # expect: det-set-iter
        total += item
    return total


def materialise_drain(component):
    return list(component.drain_dirty())  # expect: det-set-iter


def multi_drain(unit):
    predictor_dirty, btb_dirty = unit.drain_dirty()
    ordered = [key for key in predictor_dirty]  # expect: det-set-iter
    for index in btb_dirty:  # expect: det-set-iter
        ordered.append(index)
    return ordered
