"""Intentional snapshot-contract violations (never imported, only linted)."""


class MissingRestore:
    def __init__(self):
        self.value = 0

    def snapshot(self):  # expect: snap-pair
        return (self.value,)


class MissingSnapshotState:
    def __init__(self):
        self.table = []

    def restore_state(self, state):  # expect: snap-pair
        self.table = list(state)


class UncoveredAttr:
    def __init__(self):
        self.covered = 0
        self.hidden = 0

    def snapshot(self):
        return (self.covered,)

    def restore(self, state):
        (self.covered,) = state

    def touch(self):
        self.hidden = 1  # expect: snap-attr


class MissingDirtyMark:
    def __init__(self):
        self.table = {}
        self._dirty = None

    def begin_dirty_tracking(self):
        self._dirty = set()

    def drain_dirty(self):
        drained = self._dirty
        self._dirty = set()
        return drained if drained is not None else set()

    def snapshot(self):
        return (dict(self.table),)

    def restore(self, state):
        (self.table,) = state
        self._dirty = None

    def write(self, key, value):
        self.table[key] = value
        if self._dirty is not None:
            self._dirty.add(key)

    def sneaky_write(self, key, value):
        self.table[key] = value  # expect: snap-dirty
