"""Every rule family against its clean + violating fixture modules.

The violating fixtures carry ``# expect: rule-id`` markers; the tests
assert the exact ``(line, rule_id)`` set — a missed finding and a false
positive both fail, so rule behaviour cannot drift silently.
"""

from __future__ import annotations

import pytest

from tests.analysis.lintutils import FIXTURES, expected_markers, lint_fixture


@pytest.mark.parametrize("name", [
    "snapshot_violations.py",
    "determinism_violations.py",
    "process_violations.py",
])
def test_violating_fixture_markers_match_exactly(name):
    path = FIXTURES / name
    expected = expected_markers(path)
    assert expected, f"{name} has no expect markers"
    assert lint_fixture(path) == expected


@pytest.mark.parametrize("name", [
    "snapshot_clean.py",
    "determinism_clean.py",
    "process_clean.py",
])
def test_clean_fixture_has_no_findings(name):
    path = FIXTURES / name
    assert expected_markers(path) == set()
    assert lint_fixture(path) == set()


def test_rule_selection_restricts_findings():
    path = FIXTURES / "determinism_violations.py"
    only_wallclock = lint_fixture(path, rule_ids=["det-wallclock"])
    assert only_wallclock == {
        (line, rule_id)
        for line, rule_id in expected_markers(path)
        if rule_id == "det-wallclock"
    }
    assert len(only_wallclock) == 2


def test_findings_carry_location_rule_and_hint():
    from repro.analysis import fixture_config, lint_file

    path = FIXTURES / "snapshot_violations.py"
    findings = lint_file(path, config=fixture_config())
    assert findings == sorted(findings)
    pair = next(f for f in findings if f.rule_id == "snap-pair")
    assert pair.path.endswith("snapshot_violations.py")
    assert pair.line > 0 and pair.col > 0
    assert "MissingRestore" in pair.message
    assert "restore" in pair.hint
    rendered = pair.format()
    assert f":{pair.line}:{pair.col}: [snap-pair]" in rendered
    assert pair.to_dict()["rule"] == "snap-pair"
