"""The ``# repro-lint:`` escape hatch: disable, disable-file, transient."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import (
    BAD_DIRECTIVE,
    DirectiveError,
    build_context,
    fixture_config,
    lint_file,
)
from tests.analysis import lintutils


@pytest.fixture
def write_module(tmp_path):
    """Write source to a temp module and return its path."""

    def _write(source: str, name: str = "fixture_mod.py"):
        return lintutils.write_module(tmp_path, source, name)

    return _write


def _rule_ids(path, config=None):
    findings = lint_file(path, config=config or fixture_config())
    return {(f.line, f.rule_id) for f in findings}


VIOLATION = textwrap.dedent("""\
    import time


    def stamp():
        return time.time()
""")


def test_line_disable_suppresses_only_that_rule(write_module):
    suppressed = VIOLATION.replace(
        "return time.time()",
        "return time.time()  # repro-lint: disable=det-wallclock -- test",
    )
    assert _rule_ids(write_module(VIOLATION)) == {(5, "det-wallclock")}
    assert _rule_ids(write_module(suppressed, "ok.py")) == set()


def test_line_disable_is_line_scoped(write_module):
    source = VIOLATION + textwrap.dedent("""\


        def stamp_again():
            return time.time()  # repro-lint: disable=det-wallclock -- test
    """)
    assert _rule_ids(write_module(source)) == {(5, "det-wallclock")}


def test_line_disable_other_rule_does_not_suppress(write_module):
    source = VIOLATION.replace(
        "return time.time()",
        "return time.time()  # repro-lint: disable=det-random -- wrong id",
    )
    assert _rule_ids(write_module(source)) == {(5, "det-wallclock")}


def test_file_disable_suppresses_everywhere_and_is_tracked(write_module):
    source = "# repro-lint: disable-file=det-wallclock -- test\n" + VIOLATION
    path = write_module(source)
    assert _rule_ids(path) == set()
    context = build_context(path, path.read_text())
    assert context.blanket_disables == {"det-wallclock"}


def test_multiple_rules_in_one_directive(write_module):
    source = textwrap.dedent("""\
        import time


        def stamp(entry):
            return time.time(), id(entry)  # repro-lint: disable=det-wallclock,det-id -- test
    """)
    assert _rule_ids(write_module(source)) == set()


def test_transient_annotation_excuses_attr(write_module):
    body = textwrap.dedent("""\
        class Widget:
            def __init__(self):
                self.value = 0
                self._cache = None{marker}

            def snapshot(self):
                return (self.value,)

            def restore(self, state):
                (self.value,) = state

            def bump(self):
                self.value += 1
                self._cache = None
    """)
    noisy = write_module(body.format(marker=""))
    assert _rule_ids(noisy) == {(14, "snap-attr")}
    quiet = write_module(
        body.format(marker="  # repro-lint: transient -- derived"), "quiet.py"
    )
    assert _rule_ids(quiet) == set()


def test_malformed_directive_is_reported_not_crashed(write_module):
    path = write_module("# repro-lint: disable\nx = 1\n")
    findings = lint_file(path, config=fixture_config())
    assert [f.rule_id for f in findings] == [BAD_DIRECTIVE]
    with pytest.raises(DirectiveError):
        build_context(path, path.read_text())


def test_unknown_directive_word_is_malformed(write_module):
    path = write_module("x = 1  # repro-lint: suppress=det-id\n")
    findings = lint_file(path, config=fixture_config())
    assert [f.rule_id for f in findings] == [BAD_DIRECTIVE]


def test_prose_mention_of_directive_is_ignored(write_module):
    path = write_module(
        "# the escape hatch is `# repro-lint: disable=<rule>`\n"
        "text = 'repro-lint: disable=det-id'\n"
    )
    assert _rule_ids(path) == set()
