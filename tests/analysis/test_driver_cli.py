"""Driver mechanics (discovery, parse errors) and the `repro lint` CLI."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    PARSE_ERROR,
    fixture_config,
    get_rules,
    iter_python_files,
    lint_file,
    lint_paths,
)
from repro.cli import main

VIOLATION = textwrap.dedent("""\
    import time


    def stamp():
        return time.time()
""")


def test_iter_python_files_recurses_sorted_and_dedupes(tmp_path):
    (tmp_path / "pkg").mkdir()
    b = tmp_path / "pkg" / "b.py"
    a = tmp_path / "a.py"
    for path in (b, a):
        path.write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python")
    files = iter_python_files([tmp_path, a])
    assert files == [a, b]


def test_syntax_error_becomes_a_finding(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    findings = lint_file(path)
    assert [f.rule_id for f in findings] == [PARSE_ERROR]
    assert findings[0].line == 1
    # A broken file cannot be silently skipped by the directory walk.
    assert [f.rule_id for f in lint_paths([tmp_path])] == [PARSE_ERROR]


def test_unknown_rule_id_is_rejected_with_catalogue():
    with pytest.raises(ValueError, match="unknown rule 'det-nope'"):
        get_rules(["det-nope"])


def test_cli_lint_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert capsys.readouterr().out == ""


def test_cli_lint_findings_exit_nonzero_with_locations(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "faults" / "sampling.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(VIOLATION)
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "[det-wallclock]" in out
    assert f"{bad}:5:" in out


def test_cli_lint_json_is_machine_readable(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "faults" / "sampling.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(VIOLATION)
    assert main(["lint", "--json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [(f["rule"], f["line"]) for f in payload] == [("det-wallclock", 5)]
    assert payload[0]["path"] == str(bad)
    assert payload[0]["hint"]


def test_cli_lint_rule_filter(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "faults" / "sampling.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(VIOLATION + "\n\ndef key(x):\n    return id(x)\n")
    assert main(["lint", "--rule", "det-id", "--json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload] == ["det-id"]


def test_cli_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("snap-pair", "snap-attr", "snap-dirty", "det-wallclock",
                    "det-set-iter", "proc-fsync", "proc-frozen-payload"):
        assert rule_id in out


def test_cli_lint_missing_path_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "does-not-exist-anywhere"])
    assert excinfo.value.code == 2


def test_fixture_config_opens_every_scope(tmp_path):
    path = tmp_path / "anywhere.py"
    path.write_text(VIOLATION)
    assert lint_file(path) == []  # out of scope under the default config
    findings = lint_file(path, config=fixture_config())
    assert [f.rule_id for f in findings] == ["det-wallclock"]
