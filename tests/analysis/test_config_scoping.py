"""Path-scoped rule application: identity path vs measurement layer."""

from __future__ import annotations

import textwrap

from repro.analysis import DEFAULT_CONFIG, lint_file, module_name_for


def test_default_scopes():
    config = DEFAULT_CONFIG
    assert config.in_determinism_scope("repro.uarch.checkpoint")
    assert config.in_determinism_scope("repro.isa.memory")
    assert config.in_determinism_scope("repro.faults.campaign")
    assert config.in_determinism_scope("repro.api.spec")
    assert config.in_determinism_scope("repro.cluster.shards")
    # The measurement layer may read clocks; the result/store layer is
    # not on the identity path at all.
    assert not config.in_determinism_scope("repro.perf.harness")
    assert not config.in_determinism_scope("repro.api.store")
    assert not config.in_determinism_scope("repro.cli")
    # Process-safety scopes.
    assert config.in_process_scope("repro.cluster.engine")
    assert not config.in_process_scope("repro.uarch.pipeline")
    assert config.in_payload_scope("repro.cluster.shards")
    assert config.in_journal_scope("repro.cluster.journal")
    assert not config.in_journal_scope("repro.cluster.engine")


def test_module_name_for_anchors_on_src():
    from pathlib import Path

    assert module_name_for(
        Path("src/repro/uarch/checkpoint.py")) == "repro.uarch.checkpoint"
    assert module_name_for(
        Path("/root/repo/src/repro/cluster/journal.py")
    ) == "repro.cluster.journal"
    assert module_name_for(Path("src/repro/api/__init__.py")) == "repro.api"
    assert module_name_for(
        Path("site-packages/repro/isa/memory.py")) == "repro.isa.memory"
    assert module_name_for(Path("/tmp/xyz/fixture_mod.py")) == "fixture_mod"


def test_determinism_rules_skip_out_of_scope_modules(tmp_path):
    """The same wall-clock read lints dirty on the identity path and
    clean in the measurement layer."""
    source = textwrap.dedent("""\
        import time


        def stamp():
            return time.time()
    """)
    identity = tmp_path / "src" / "repro" / "faults" / "sampling.py"
    measurement = tmp_path / "src" / "repro" / "perf" / "timers.py"
    for path in (identity, measurement):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    identity_findings = lint_file(identity, config=DEFAULT_CONFIG)
    assert [f.rule_id for f in identity_findings] == ["det-wallclock"]
    assert lint_file(measurement, config=DEFAULT_CONFIG) == []


def test_determinism_allowlist_names_only_the_measurement_layer():
    """Policy: the determinism carve-out is exactly the measurement layer
    (benchmarking and observability).  Any new entry would exempt code
    from the identity-path determinism rules, so adding one must be a
    deliberate, reviewed decision — this assertion forces that."""
    assert DEFAULT_CONFIG.determinism_allow == ("repro.perf", "repro.obs")
    assert not DEFAULT_CONFIG.in_determinism_scope("repro.obs")
    assert not DEFAULT_CONFIG.in_determinism_scope("repro.obs.metrics")
    assert not DEFAULT_CONFIG.in_determinism_scope("repro.perf.bench")
