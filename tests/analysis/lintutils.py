"""Shared helpers for the static-analyzer tests.

Fixture modules under ``fixtures/`` carry ``# expect: rule-id`` marker
comments on every line where a rule must fire; the tests lint the file
and assert the finding set equals the marked set exactly — both missing
findings and unexpected extras fail.

(Deliberately not a ``conftest.py``: the benchmark modules import their
own helpers with a bare ``from conftest import ...``, which a second
top-level ``conftest`` module would shadow.)
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional, Sequence, Set, Tuple

from repro.analysis import fixture_config, get_rules, lint_file

FIXTURES = Path(__file__).parent / "fixtures"

_MARKER = re.compile(r"#\s*expect:\s*(?P<rules>[\w\-, ]+)")


def expected_markers(path: Path) -> Set[Tuple[int, str]]:
    """``(line, rule_id)`` pairs from ``# expect:`` marker comments."""
    expected: Set[Tuple[int, str]] = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        match = _MARKER.search(text)
        if match is None:
            continue
        for rule_id in match.group("rules").split(","):
            expected.add((lineno, rule_id.strip()))
    return expected


def lint_fixture(
    path: Path, rule_ids: Optional[Sequence[str]] = None
) -> Set[Tuple[int, str]]:
    """Lint ``path`` with every scope open; return ``(line, rule_id)``."""
    rules = get_rules(rule_ids)
    findings = lint_file(path, rules=rules, config=fixture_config())
    return {(finding.line, finding.rule_id) for finding in findings}


def write_module(
    directory: Path, source: str, name: str = "fixture_mod.py"
) -> Path:
    """Write ``source`` to a module under ``directory`` and return its path."""
    path = directory / name
    path.write_text(source)
    return path
