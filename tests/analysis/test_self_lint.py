"""The repository must satisfy its own contracts.

Two policy gates plus the teeth-proving meta-test: a copy of
``regfile.py`` with one dirty-mark deleted must make ``snap-dirty`` fire,
demonstrating the rule would have caught the regression the delta
checkpoints depend on.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis import blanket_disables, lint_file, lint_paths

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def test_source_tree_lints_clean():
    findings = lint_paths([REPO_SRC])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_no_blanket_disables_in_contract_trees():
    assert blanket_disables([REPO_SRC / "repro" / "uarch"]) == []
    assert blanket_disables([REPO_SRC / "repro" / "cluster"]) == []


def test_remaining_suppressions_are_single_line_and_justified():
    """Every disable in the tree is line-scoped and carries a reason."""
    import io
    import tokenize

    directive = re.compile(r"^#\s*repro-lint:\s*(disable|transient)\b(?P<rest>.*)")
    for path in sorted(REPO_SRC.rglob("*.py")):
        tokens = tokenize.generate_tokens(io.StringIO(path.read_text()).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = directive.match(token.string)
            if match is None:
                continue
            assert "--" in match.group("rest"), (
                f"{path}:{token.start[0]}: suppression without a justification"
            )


def test_deleting_a_dirty_mark_makes_snap_dirty_fire(tmp_path):
    """Mutation test: the rule must catch a removed dirty-mark."""
    original = (REPO_SRC / "repro" / "uarch" / "regfile.py").read_text()
    mark = (
        "        if self._dirty is not None:\n"
        "            self._dirty.add(index)\n"
    )
    assert original.count(mark) >= 4  # write, mark_not_ready, flip_bit, set_bit
    # Remove the mark from write() only (the first occurrence).
    mutated = original.replace(mark, "", 1)
    assert mutated != original

    pristine = tmp_path / "regfile_pristine.py"
    pristine.write_text(original)
    assert lint_file(pristine) == []

    broken = tmp_path / "regfile_broken.py"
    broken.write_text(mutated)
    findings = lint_file(broken)
    assert [f.rule_id for f in findings] == ["snap-dirty"]
    assert "write" in findings[0].message
    assert "'values'" in findings[0].message or "'ready'" in findings[0].message
