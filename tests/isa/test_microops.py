"""Tests for macro-instruction decoding into micro-operations."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import BranchCondition, Instruction, Opcode, Operand
from repro.isa.microops import MicroOpKind, RefKind, decode_instruction
from repro.isa.registers import Reg


def _decode_single(emit):
    """Build a one-instruction program via the builder and decode it."""
    b = ProgramBuilder("decode")
    emit(b)
    b.halt()
    program = b.build()
    return program.uops(0)


def test_simple_alu_is_single_uop():
    uops = _decode_single(lambda b: b.add(Reg.RAX, Reg.RBX, 4))
    assert len(uops) == 1
    assert uops[0].kind is MicroOpKind.ALU
    assert uops[0].is_last


def test_memory_source_alu_decodes_to_load_plus_alu():
    uops = _decode_single(lambda b: b.add(Reg.RAX, Reg.RBX, (Reg.RCX, 16)))
    assert [u.kind for u in uops] == [MicroOpKind.LOAD, MicroOpKind.ALU]
    assert uops[0].dest.kind is RefKind.TMP
    assert uops[1].src2.kind is RefKind.TMP
    assert [u.upc for u in uops] == [0, 1]


def test_store_decodes_to_address_and_data_uops():
    uops = _decode_single(lambda b: b.store(Reg.RAX, Reg.RBX, 8))
    assert [u.kind for u in uops] == [MicroOpKind.STORE_ADDR, MicroOpKind.STORE_DATA]
    assert uops[0].mem_disp == 8
    assert uops[1].src1.kind is RefKind.REG


def test_call_decodes_to_push_and_jump():
    b = ProgramBuilder("call")
    b.call("target")
    b.label("target")
    b.halt()
    uops = b.build().uops(0)
    kinds = [u.kind for u in uops]
    assert kinds == [
        MicroOpKind.ALU,
        MicroOpKind.STORE_ADDR,
        MicroOpKind.STORE_DATA,
        MicroOpKind.JUMP,
    ]
    # The pushed value is the return address (RIP + 1).
    assert uops[2].src1.kind is RefKind.IMM
    assert uops[2].src1.value == 1
    assert uops[3].target == 1


def test_ret_decodes_to_pop_and_indirect_jump():
    uops = _decode_single(lambda b: b.ret())
    kinds = [u.kind for u in uops]
    assert kinds == [MicroOpKind.LOAD, MicroOpKind.ALU, MicroOpKind.JUMP]
    assert uops[2].is_indirect


def test_branch_carries_condition_and_target():
    b = ProgramBuilder("branch")
    b.label("top")
    b.blt(Reg.RAX, 10, "top")
    b.halt()
    uops = b.build().uops(0)
    assert len(uops) == 1
    assert uops[0].kind is MicroOpKind.BRANCH
    assert uops[0].condition is BranchCondition.LT
    assert uops[0].target == 0


def test_upc_assignment_is_sequential_and_last_flag_unique():
    uops = _decode_single(lambda b: b.store(Reg.RAX, Reg.RBX))
    assert [u.upc for u in uops] == list(range(len(uops)))
    assert sum(1 for u in uops if u.is_last) == 1
    assert uops[-1].is_last


def test_out_and_halt_and_nop_single_uops():
    for emit, kind in (
        (lambda b: b.out(Reg.RAX), MicroOpKind.OUT),
        (lambda b: b.nop(), MicroOpKind.NOP),
    ):
        uops = _decode_single(emit)
        assert len(uops) == 1
        assert uops[0].kind is kind


def test_register_sources_skips_immediates():
    uops = _decode_single(lambda b: b.add(Reg.RAX, Reg.RBX, 7))
    sources = uops[0].register_sources()
    assert len(sources) == 1
    assert sources[0].value == int(Reg.RBX)


def test_decode_every_workload_instruction_kind():
    """Every instruction of every registered workload decodes cleanly."""
    from repro.workloads import all_names, get_workload

    for name in all_names():
        program = get_workload(name).build_for_test()
        for rip in range(program.num_instructions):
            uops = program.uops(rip)
            assert uops, f"{name}: instruction {rip} decoded to no micro-ops"
            assert uops[-1].is_last
