"""Tests for the program builder, program container and label resolution."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.errors import AssemblerError
from repro.isa.memory import DATA_BASE
from repro.isa.program import Program
from repro.isa.registers import Reg


def test_labels_resolve_to_instruction_indices():
    b = ProgramBuilder("labels")
    b.movi(Reg.RAX, 0)
    b.label("loop")
    b.add(Reg.RAX, Reg.RAX, 1)
    b.blt(Reg.RAX, 3, "loop")
    b.halt()
    program = b.build()
    assert program.label_address("loop") == 1
    branch = program.instruction_at(2)
    assert branch.target_operand().value == 1


def test_forward_labels_resolve():
    b = ProgramBuilder("forward")
    b.jmp("end")
    b.movi(Reg.RAX, 1)
    b.label("end")
    b.halt()
    program = b.build()
    assert program.instruction_at(0).target_operand().value == 2


def test_undefined_label_raises():
    b = ProgramBuilder("broken")
    b.jmp("nowhere")
    b.halt()
    with pytest.raises(AssemblerError):
        b.build()


def test_duplicate_label_raises():
    b = ProgramBuilder("dup")
    b.label("x")
    b.nop()
    with pytest.raises(AssemblerError):
        b.label("x")


def test_empty_program_rejected():
    with pytest.raises(AssemblerError):
        ProgramBuilder("empty").build()


def test_data_allocation_is_aligned_and_non_overlapping():
    b = ProgramBuilder("data")
    first = b.alloc_bytes("a", b"123")
    second = b.alloc_words("b", [1, 2])
    third = b.alloc_space("c", 16)
    b.halt()
    program = b.build()
    assert first >= DATA_BASE
    assert second % 8 == 0
    assert second >= first + 3
    assert third >= second + 16
    assert program.segment("b").size == 16
    assert b.address_of("c") == third


def test_unknown_segment_lookup_raises():
    b = ProgramBuilder("segments")
    b.halt()
    with pytest.raises(KeyError):
        b.address_of("missing")
    with pytest.raises(KeyError):
        b.build().segment("missing")


def test_initial_memory_contains_segment_data():
    b = ProgramBuilder("init")
    address = b.alloc_words("values", [10, 20, 30])
    b.halt()
    memory = b.build().initial_memory()
    assert memory.read(address, 8) == 10
    assert memory.read(address + 16, 8) == 30


def test_basic_block_leaders_cover_branch_targets_and_fallthroughs():
    b = ProgramBuilder("blocks")
    b.movi(Reg.RAX, 0)          # 0: leader (entry)
    b.label("loop")             # 1: leader (branch target)
    b.add(Reg.RAX, Reg.RAX, 1)  # 1
    b.blt(Reg.RAX, 5, "loop")   # 2: branch
    b.out(Reg.RAX)              # 3: leader (fall-through)
    b.halt()                    # 4
    program = b.build()
    leaders = program.basic_block_leaders()
    assert leaders == [0, 1, 3]
    block_of = program.basic_block_of()
    assert block_of[2] == 1
    assert block_of[4] == 3


def test_instruction_at_out_of_range_raises():
    b = ProgramBuilder("tiny")
    b.halt()
    program = b.build()
    with pytest.raises(IndexError):
        program.instruction_at(5)
    assert not program.in_range(-1)
    assert program.in_range(0)


def test_listing_mentions_labels_and_instructions():
    b = ProgramBuilder("listing")
    b.label("start")
    b.movi(Reg.RAX, 7)
    b.halt()
    text = b.build().listing()
    assert "start:" in text
    assert "mov rax, 7" in text


def test_register_index_bounds_checked():
    b = ProgramBuilder("regs")
    with pytest.raises(AssemblerError):
        b.movi(99, 0)


def test_invalid_memory_size_rejected():
    b = ProgramBuilder("size")
    with pytest.raises(ValueError):
        b.load(Reg.RAX, Reg.RBX, 0, size=3)


def test_data_colliding_with_stack_rejected():
    b = ProgramBuilder("huge")
    with pytest.raises(AssemblerError):
        b.alloc_space("too_big", 1 << 25)
