"""Tests for architectural register naming and 64-bit arithmetic helpers."""

import pytest

from repro.isa.registers import (
    NUM_ARCH_REGS,
    Reg,
    WORD_MASK,
    parse_register,
    register_name,
    to_signed,
    to_unsigned,
)


def test_register_count_matches_x86_64():
    assert NUM_ARCH_REGS == 16


def test_register_names_round_trip():
    for index in range(NUM_ARCH_REGS):
        assert parse_register(register_name(index)) == index


def test_parse_register_accepts_aliases_case_insensitively():
    assert parse_register("RAX") == int(Reg.RAX)
    assert parse_register("rSp") == int(Reg.RSP)


def test_parse_register_rejects_unknown_names():
    with pytest.raises(ValueError):
        parse_register("r99")


def test_register_name_rejects_out_of_range():
    with pytest.raises(ValueError):
        register_name(16)
    with pytest.raises(ValueError):
        register_name(-1)


def test_stack_pointer_is_register_14():
    assert int(Reg.RSP) == 14


def test_to_signed_and_unsigned_round_trip():
    assert to_signed(WORD_MASK) == -1
    assert to_unsigned(-1) == WORD_MASK
    assert to_signed(to_unsigned(-123456)) == -123456
    assert to_unsigned(1 << 64) == 0


def test_to_signed_positive_values_unchanged():
    assert to_signed(42) == 42
    assert to_signed((1 << 63) - 1) == (1 << 63) - 1


def test_to_signed_most_negative():
    assert to_signed(1 << 63) == -(1 << 63)
