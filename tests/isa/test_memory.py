"""Tests for the byte-addressable memory image and its region model."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.errors import ProgramCrash
from repro.isa.memory import (
    AccessClass,
    DATA_BASE,
    MEM_LIMIT,
    MemoryImage,
    STACK_LOW,
    STACK_TOP,
)


def test_unwritten_memory_reads_as_zero():
    image = MemoryImage()
    assert image.read(DATA_BASE, 8) == 0
    assert image.read(DATA_BASE + 3, 2) == 0


def test_word_write_read_round_trip():
    image = MemoryImage()
    image.write(DATA_BASE, 0x1122334455667788, 8)
    assert image.read(DATA_BASE, 8) == 0x1122334455667788


def test_little_endian_byte_order():
    image = MemoryImage()
    image.write(DATA_BASE, 0x0102030405060708, 8)
    assert image.read(DATA_BASE, 1) == 0x08
    assert image.read(DATA_BASE + 7, 1) == 0x01


def test_unaligned_access_spans_words():
    image = MemoryImage()
    image.write(DATA_BASE + 6, 0xAABB, 2)
    assert image.read(DATA_BASE + 6, 1) == 0xBB
    assert image.read(DATA_BASE + 7, 1) == 0xAA
    assert image.read(DATA_BASE, 8) >> 48 == 0xAABB


def test_partial_write_preserves_neighbouring_bytes():
    image = MemoryImage()
    image.write(DATA_BASE, 0xFFFFFFFFFFFFFFFF, 8)
    image.write(DATA_BASE + 2, 0x00, 1)
    assert image.read(DATA_BASE, 8) == 0xFFFFFFFFFF00FFFF


def test_region_classification():
    image = MemoryImage(heap_end=DATA_BASE + 0x100)
    assert image.classify_access(DATA_BASE, 8) is AccessClass.OK
    assert image.classify_access(STACK_TOP - 8, 8) is AccessClass.OK
    assert image.classify_access(DATA_BASE + 0x200, 8) is AccessClass.DEMAND
    assert image.classify_access(MEM_LIMIT, 8) is AccessClass.CRASH
    assert image.classify_access(-8, 8) is AccessClass.CRASH
    assert image.classify_access(0, 8) is AccessClass.CRASH


def test_checked_read_raises_on_out_of_range():
    image = MemoryImage()
    with pytest.raises(ProgramCrash):
        image.checked_read(MEM_LIMIT + 8, 8)


def test_checked_read_flags_demand_region():
    image = MemoryImage(heap_end=DATA_BASE + 8)
    value, demand = image.checked_read(DATA_BASE + 64, 8)
    assert value == 0
    assert demand


def test_checked_write_allows_stack():
    image = MemoryImage()
    assert image.checked_write(STACK_LOW + 8, 42, 8) is False
    assert image.read(STACK_LOW + 8, 8) == 42


def test_load_and_read_bytes_round_trip():
    image = MemoryImage()
    payload = bytes(range(1, 33))
    image.load_bytes(DATA_BASE + 5, payload)
    assert image.read_bytes(DATA_BASE + 5, len(payload)) == payload


def test_copy_is_independent():
    image = MemoryImage()
    image.write(DATA_BASE, 1, 8)
    clone = image.copy()
    clone.write(DATA_BASE, 2, 8)
    assert image.read(DATA_BASE, 8) == 1
    assert clone.read(DATA_BASE, 8) == 2


def test_content_hash_changes_with_content():
    image = MemoryImage()
    baseline = image.content_hash()
    image.write(DATA_BASE, 7, 8)
    assert image.content_hash() != baseline


@given(
    offset=st.integers(min_value=0, max_value=256),
    value=st.integers(min_value=0, max_value=(1 << 64) - 1),
    size=st.sampled_from([1, 2, 4, 8]),
)
def test_write_read_round_trip_property(offset, value, size):
    image = MemoryImage()
    address = DATA_BASE + offset
    masked = value & ((1 << (8 * size)) - 1)
    image.write(address, value, size)
    assert image.read(address, size) == masked
