"""Unit and property-based tests for the shared ALU semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.alu import apply_binary, apply_unary, evaluate_condition
from repro.isa.errors import ProgramCrash
from repro.isa.instructions import BranchCondition, Opcode
from repro.isa.registers import WORD_MASK, to_signed

u64 = st.integers(min_value=0, max_value=WORD_MASK)


def test_add_wraps_at_64_bits():
    assert apply_binary(Opcode.ADD, WORD_MASK, 1) == 0


def test_sub_wraps_below_zero():
    assert apply_binary(Opcode.SUB, 0, 1) == WORD_MASK


def test_mul_masks_to_64_bits():
    assert apply_binary(Opcode.MUL, 1 << 40, 1 << 40) == (1 << 80) & WORD_MASK


def test_div_and_mod_are_unsigned():
    assert apply_binary(Opcode.DIV, 100, 7) == 14
    assert apply_binary(Opcode.MOD, 100, 7) == 2


def test_div_by_zero_crashes():
    with pytest.raises(ProgramCrash):
        apply_binary(Opcode.DIV, 1, 0)
    with pytest.raises(ProgramCrash):
        apply_binary(Opcode.MOD, 1, 0)


def test_shifts_use_low_six_bits_of_amount():
    assert apply_binary(Opcode.SHL, 1, 64) == 1
    assert apply_binary(Opcode.SHR, 8, 67) == 1


def test_sar_preserves_sign():
    minus_eight = (-8) & WORD_MASK
    assert to_signed(apply_binary(Opcode.SAR, minus_eight, 1)) == -4


def test_slt_and_sltu_disagree_on_negative_values():
    minus_one = WORD_MASK
    assert apply_binary(Opcode.SLT, minus_one, 0) == 1
    assert apply_binary(Opcode.SLTU, minus_one, 0) == 0


def test_min_max_are_signed():
    minus_two = (-2) & WORD_MASK
    assert apply_binary(Opcode.MIN, minus_two, 1) == minus_two
    assert apply_binary(Opcode.MAX, minus_two, 1) == 1


def test_unary_operations():
    assert apply_unary(Opcode.MOV, 5) == 5
    assert apply_unary(Opcode.NOT, 0) == WORD_MASK
    assert apply_unary(Opcode.NEG, 1) == WORD_MASK


def test_unknown_binary_opcode_rejected():
    with pytest.raises(ValueError):
        apply_binary(Opcode.LOAD, 1, 2)


@given(a=u64, b=u64)
def test_xor_is_self_inverse(a, b):
    assert apply_binary(Opcode.XOR, apply_binary(Opcode.XOR, a, b), b) == a


@given(a=u64, b=u64)
def test_add_sub_round_trip(a, b):
    total = apply_binary(Opcode.ADD, a, b)
    assert apply_binary(Opcode.SUB, total, b) == a


@given(a=u64)
def test_neg_is_additive_inverse(a):
    assert apply_binary(Opcode.ADD, a, apply_unary(Opcode.NEG, a)) == 0


@given(a=u64, b=u64)
def test_condition_trichotomy(a, b):
    eq = evaluate_condition(BranchCondition.EQ, a, b)
    lt = evaluate_condition(BranchCondition.LT, a, b)
    gt = evaluate_condition(BranchCondition.GT, a, b)
    assert sum((eq, lt, gt)) == 1


@given(a=u64, b=u64)
def test_unsigned_and_signed_comparisons_consistent_with_python(a, b):
    assert evaluate_condition(BranchCondition.LTU, a, b) == (a < b)
    assert evaluate_condition(BranchCondition.LT, a, b) == (to_signed(a) < to_signed(b))


@given(a=u64, b=u64)
def test_le_is_lt_or_eq(a, b):
    le = evaluate_condition(BranchCondition.LE, a, b)
    lt = evaluate_condition(BranchCondition.LT, a, b)
    eq = evaluate_condition(BranchCondition.EQ, a, b)
    assert le == (lt or eq)
