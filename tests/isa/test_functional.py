"""Tests for the functional (atomic) executor."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.functional import FunctionalCpu, run_functional
from repro.isa.memory import MEM_LIMIT, STACK_TOP
from repro.isa.registers import Reg


def test_loop_program_computes_expected_sum(loop_program):
    result = run_functional(loop_program)
    expected = sum(((i * 7 + 3) % 101) * 6 for i in range(30))
    assert result.output == [expected]
    assert result.halted and not result.crashed


def test_call_program_squares_through_calls(call_program):
    result = run_functional(call_program)
    assert result.output == [(1 << 10) & 0xFFFF]


def test_division_by_zero_crashes():
    b = ProgramBuilder("div0")
    b.movi(Reg.RAX, 1)
    b.movi(Reg.RBX, 0)
    b.div(Reg.RAX, Reg.RAX, Reg.RBX)
    b.halt()
    result = run_functional(b.build())
    assert result.crashed
    assert "zero" in result.crash_reason


def test_wild_load_crashes():
    b = ProgramBuilder("wild")
    b.movi(Reg.RAX, MEM_LIMIT + 64)
    b.load(Reg.RBX, Reg.RAX, 0)
    b.halt()
    assert run_functional(b.build()).crashed


def test_demand_region_access_counts_exception_but_continues():
    b = ProgramBuilder("demand")
    heap = b.alloc_words("heap", [1])
    b.movi(Reg.RAX, heap + 4096)
    b.load(Reg.RBX, Reg.RAX, 0)
    b.out(Reg.RBX)
    b.halt()
    result = run_functional(b.build())
    assert result.halted
    assert result.exceptions == 1
    assert result.output == [0]


def test_jump_outside_program_crashes():
    b = ProgramBuilder("wildjump")
    b.movi(Reg.RAX, 1000)
    b.jmpr(Reg.RAX)
    b.halt()
    assert run_functional(b.build()).crashed


def test_instruction_budget_stops_infinite_loop():
    b = ProgramBuilder("spin")
    b.label("spin")
    b.jmp("spin")
    b.halt()
    result = run_functional(b.build(), max_instructions=500)
    assert not result.halted
    assert result.instructions == 500


def test_stack_pointer_initialised():
    b = ProgramBuilder("sp")
    b.out(Reg.RSP)
    b.halt()
    assert run_functional(b.build()).output == [STACK_TOP]


def test_step_after_halt_is_noop():
    b = ProgramBuilder("halted")
    b.halt()
    cpu = FunctionalCpu(b.build())
    cpu.step()
    assert cpu.halted
    before = cpu.instructions_executed
    cpu.step()
    assert cpu.instructions_executed == before


def test_store_then_load_round_trip_through_memory():
    b = ProgramBuilder("mem")
    buf = b.alloc_space("buf", 16)
    b.movi(Reg.RDI, buf)
    b.movi(Reg.RAX, 77)
    b.store(Reg.RAX, Reg.RDI, 8)
    b.load(Reg.RBX, Reg.RDI, 8)
    b.out(Reg.RBX)
    b.halt()
    assert run_functional(b.build()).output == [77]
