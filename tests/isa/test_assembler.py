"""Tests for the text assembler."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.errors import AssemblerError
from repro.isa.functional import run_functional
from repro.isa.instructions import Opcode


def test_assemble_and_run_simple_loop():
    program = assemble(
        """
        .data table: words 2, 4, 6, 8
            mov rdi, @table
            mov rax, 0
            mov rcx, 0
        loop:
            add rax, rax, [rdi]
            add rdi, rdi, 8
            add rcx, rcx, 1
            br.lt rcx, 4, loop
            out rax
            halt
        """
    )
    result = run_functional(program)
    assert result.output == [20]
    assert result.halted


def test_comments_and_blank_lines_ignored():
    program = assemble(
        """
        ; leading comment
        mov rax, 5    # trailing comment

        out rax
        halt
        """
    )
    assert run_functional(program).output == [5]


def test_sized_loads_and_stores():
    program = assemble(
        """
        .data buf: space 16
            mov rdi, @buf
            mov rax, 258
            store2 rax, [rdi]
            load1 rbx, [rdi]
            load1 rcx, [rdi+1]
            out rbx
            out rcx
            halt
        """
    )
    assert run_functional(program).output == [2, 1]


def test_call_and_ret():
    program = assemble(
        """
            mov rax, 3
            call double
            out rax
            halt
        double:
            add rax, rax, rax
            ret
        """
    )
    assert run_functional(program).output == [6]


def test_data_bytes_directive():
    program = assemble(
        """
        .data msg: bytes 0x41, 0x42, 0x43
            mov rdi, @msg
            load1 rax, [rdi+2]
            out rax
            halt
        """
    )
    assert run_functional(program).output == [0x43]


def test_register_operand_in_branch():
    program = assemble(
        """
            mov rax, 3
            mov rbx, 3
            br.eq rax, rbx, equal
            mov rcx, 0
            jmp end
        equal:
            mov rcx, 1
        end:
            out rcx
            halt
        """
    )
    assert run_functional(program).output == [1]


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("frobnicate rax, rbx\nhalt")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblerError):
        assemble("add rax, rbx\nhalt")


def test_bad_memory_operand_rejected():
    with pytest.raises(AssemblerError):
        assemble("load rax, [rbx+*4]\nhalt")


def test_undefined_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("jmp missing\nhalt")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("x:\nnop\nx:\nhalt")


def test_memory_source_alu_form():
    program = assemble(
        """
        .data v: words 40
            mov rdi, @v
            mov rax, 2
            add rax, rax, [rdi]
            out rax
            halt
        """
    )
    assert run_functional(program).output == [42]
    assert program.instruction_at(2).opcode is Opcode.ADD
    assert len(program.uops(2)) == 2
