"""Concurrent writers on the persistence layer.

Two mechanisms, each documented where it is implemented:

* the **journal** serialises appends with ``fcntl.flock`` around the
  write+fsync, so records from concurrent processes interleave whole,
  never torn;
* the **store** (and the artifact cache) use write-then-replace: each
  writer builds a complete temp file and renames it over the target, so
  concurrent saves of the same run id race benignly — last rename wins
  and every intermediate state is a complete artifact.
"""

from __future__ import annotations

import json
import multiprocessing

from repro.api import CampaignSpec, ResultStore, SerialEngine
from repro.cluster.journal import RunJournal, journal_path
from repro.cluster.shards import FaultShard
from repro.testing import small_config
from repro.uarch.structures import TargetStructure

SMALL = small_config()

WRITERS = 4
APPENDS = 25


def spec() -> CampaignSpec:
    return CampaignSpec(
        workload="sha", structure=TargetStructure.RF, config=SMALL,
        scale=1, faults=10, seed=0, method="comprehensive",
    )


def _journal_writer(journal_dir, run_id, writer):
    journal = RunJournal.load(journal_dir, run_id)
    for seq in range(APPENDS):
        journal._append_record({
            "kind": "note", "writer": writer, "seq": seq,
            # Big enough that an unserialised append would tear.
            "payload": "x" * 512,
        })


def _store_writer(store_dir, outcome, saves):
    store = ResultStore(store_dir)
    for _ in range(saves):
        store.save(outcome)


def test_concurrent_journal_appends_interleave_whole(tmp_path):
    campaign_spec = spec()
    shard = FaultShard(campaign_run_id=campaign_spec.run_id(), index=0,
                       structure="RF",
                       faults=tuple((pos, 0, pos, pos) for pos in range(5)))
    RunJournal.create(tmp_path, campaign_spec, [shard], shard_size=5)

    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(target=_journal_writer,
                        args=(tmp_path, campaign_spec.run_id(), writer))
        for writer in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
        assert process.exitcode == 0

    lines = journal_path(
        tmp_path, campaign_spec.run_id()).read_text().splitlines(True)
    assert all(line.endswith("\n") for line in lines), "no torn tail"
    records = [json.loads(line) for line in lines]  # every line parses whole
    notes = {(record["writer"], record["seq"])
             for record in records if record["kind"] == "note"}
    assert len(notes) == WRITERS * APPENDS, "every append landed exactly once"
    assert all(record["payload"] == "x" * 512
               for record in records if record["kind"] == "note"), (
        "no record lost bytes to an interleaved writer")


def test_concurrent_store_saves_race_benignly(tmp_path):
    outcome = SerialEngine().run([spec()])[0]
    reference = outcome.classification_fingerprint()
    store_dir = tmp_path / "store"
    ResultStore(store_dir)  # create the root before the race

    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(target=_store_writer, args=(store_dir, outcome, 10))
        for _ in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
        assert process.exitcode == 0

    final = ResultStore(store_dir)
    loaded = final.load(outcome.run_id)  # raises StoreError if torn
    assert loaded.classification_fingerprint() == reference
    assert final.run_ids() == [outcome.run_id]
    # No failed-attempt temp files leak from the race.
    assert list(store_dir.glob(".tmp-*")) == []
