"""Graceful degradation: persistent faults surface as typed errors or
rebuild-from-scratch fallbacks, never as stack traces or dead campaigns."""

from __future__ import annotations

import pytest

from repro import cli
from repro.api import CampaignSpec, ResultStore, SerialEngine
from repro.api.session import Session
from repro.api.store import StoreError, StoreUnavailableError
from repro.cluster.artifacts import ArtifactCache
from repro.cluster.journal import (
    JournalError,
    JournalWriteError,
    RunJournal,
)
from repro.cluster.shards import FaultShard
from repro.resilience import FaultFs, use_fs
from repro.testing import small_config
from repro.uarch.structures import TargetStructure

SMALL = small_config()


def spec() -> CampaignSpec:
    return CampaignSpec(
        workload="sha", structure=TargetStructure.RF, config=SMALL,
        scale=1, faults=10, seed=0, method="comprehensive",
    )


@pytest.fixture(scope="module")
def outcome():
    return SerialEngine().run([spec()])[0]


# ----------------------------------------------------------------------
# ResultStore: persistent ENOSPC -> typed StoreUnavailableError
# ----------------------------------------------------------------------

def test_persistent_enospc_raises_store_unavailable(outcome, tmp_path):
    fs = FaultFs(script={"mkstemp": ["enospc"] * 20})
    store = ResultStore(tmp_path / "store", fs=fs)
    with pytest.raises(StoreUnavailableError) as unavailable:
        store.save(outcome)
    error = unavailable.value
    assert isinstance(error, StoreError), "must render via the CLI handler"
    assert error.run_id == outcome.run_id
    assert error.attempts == store.retry.max_attempts
    assert "free disk space" in str(error)
    assert "repro resume" in str(error)


def test_transient_enospc_is_retried_through(outcome, tmp_path):
    fs = FaultFs(script={"mkstemp": ["enospc", "ok"]})
    store = ResultStore(tmp_path / "store", fs=fs)
    path = store.save(outcome)
    assert path.exists()
    assert store.get(outcome.run_id).run_id == outcome.run_id


def test_cli_renders_store_unavailable_as_one_line(tmp_path, capsys):
    argv = ["run", "--workload", "sha", "--faults", "10", "--scale", "1",
            "--method", "comprehensive", "--engine", "serial",
            "--store", str(tmp_path / "store")]
    with use_fs(FaultFs(script={"mkstemp": ["enospc"] * 50})):
        exit_code = cli.main(argv)
    captured = capsys.readouterr()
    assert exit_code == 1
    error_lines = [line for line in captured.err.splitlines() if line]
    assert len(error_lines) == 1, "one actionable line, not a stack trace"
    assert error_lines[0].startswith("repro: ")
    assert "free disk space" in error_lines[0]


# ----------------------------------------------------------------------
# ArtifactCache: unreadable dirs/artifacts degrade to rebuild-from-scratch
# ----------------------------------------------------------------------

def test_cache_degrades_when_root_is_unusable(tmp_path):
    fs = FaultFs(script={"mkdir": ["eio"] * 20})
    cache = ArtifactCache(tmp_path / "cache", fs=fs)
    assert cache.degraded
    assert cache.degraded_events == 1
    assert cache.has_golden(spec()) is False
    assert cache.load_golden(spec()) is None
    path = cache.store_golden(spec(), golden=None)  # no-op, returns path
    assert not path.exists()
    assert cache.stats() == {"hits": 0, "misses": 1, "stores": 0,
                             "evictions": 0}


def test_cache_load_eio_is_a_degraded_miss_not_a_removal(tmp_path):
    clean = ArtifactCache(tmp_path / "cache")
    artifact = clean.golden_path(spec())
    artifact.write_bytes(b"maybe-fine-bytes")
    fs = FaultFs(script={"open_read": ["eio"]})
    cache = ArtifactCache(tmp_path / "cache", fs=fs)
    assert cache.load_golden(spec()) is None
    assert cache.degraded_events == 1
    assert not cache.degraded, "one unreadable artifact is not fatal"
    assert artifact.exists(), "the bytes may be fine; EIO must not delete"


def test_cache_store_failure_is_best_effort(tmp_path, monkeypatch):
    fs = FaultFs(script={"mkstemp": ["enospc"] * 20})
    cache = ArtifactCache(tmp_path / "cache", fs=fs)
    assert not cache.degraded
    monkeypatch.setattr(cache, "_encode", lambda golden, key: {"stub": True})

    path = cache.store_golden(spec(), golden=object())  # must not raise
    assert not path.exists(), "persistent ENOSPC: the golden is not cached"
    assert cache.degraded_events == 1
    assert not cache.degraded, "a failed store does not poison the cache"
    assert cache.stats()["stores"] == 0


def test_campaign_survives_degraded_cache(tmp_path):
    reference = SerialEngine().run([spec()])[0].classification_fingerprint()
    fs = FaultFs(script={"mkdir": ["eio"] * 20})
    cache = ArtifactCache(tmp_path / "cache", fs=fs)
    assert cache.degraded
    session = Session(store=None, checkpointing=True, artifact_cache=cache)
    degraded_outcome = SerialEngine(session=session).run([spec()])[0]
    assert degraded_outcome.classification_fingerprint() == reference


# ----------------------------------------------------------------------
# RunJournal: refuses writes, never reads
# ----------------------------------------------------------------------

def make_shards(campaign_spec, count=2, size=5):
    shards = []
    for index in range(count):
        faults = tuple(
            (index * size + pos, index, pos, 10 * index + pos)
            for pos in range(size)
        )
        shards.append(FaultShard(
            campaign_run_id=campaign_spec.run_id(), index=index,
            structure="RF", faults=faults,
        ))
    return shards


def test_journal_refuses_writes_but_still_reads(tmp_path):
    campaign_spec = spec()
    shards = make_shards(campaign_spec)
    journal = RunJournal.create(tmp_path, campaign_spec, shards, shard_size=5)
    journal.record_shard(shards[0],
                         {fid: ("Masked", 100 + fid)
                          for fid in shards[0].fault_ids})

    broken_fs = FaultFs(script={"write": ["eio"] * 50})
    broken = RunJournal.load(tmp_path, campaign_spec.run_id(), fs=broken_fs)
    assert broken.shard_ids == [shard.shard_id() for shard in shards]

    with pytest.raises(JournalWriteError) as refused:
        broken.record_merged({"shards": 2})
    assert isinstance(refused.value, JournalError)

    # The failed append must not have torn the journal: a clean loader
    # still parses every record whole and sees the run as unmerged.
    reloaded = RunJournal.load(tmp_path, campaign_spec.run_id())
    assert reloaded.missing_shard_ids() == [shards[1].shard_id()]
    assert not reloaded.merged
