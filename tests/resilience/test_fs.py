"""The Fs seam: RealFs semantics, crash-point registry, default-fs plumbing."""

import pytest

from repro.resilience import (
    REAL_FS,
    RealFs,
    SimulatedCrash,
    crash_point_description,
    crash_points,
    default_fs,
    register_crash_point,
    set_default_fs,
    use_fs,
)
from repro.resilience.fs import _CRASH_POINTS


def test_realfs_roundtrip(tmp_path):
    fs = RealFs()
    target = tmp_path / "sub" / "file.txt"
    fs.mkdir(target.parent, parents=True)
    with fs.open(target, "w", encoding="utf-8") as stream:
        stream.write("content")
        stream.flush()
        fs.fsync(stream)
    fs.fsync_dir(target.parent)
    with fs.open(target, "r", encoding="utf-8") as stream:
        assert stream.read() == "content"
    assert fs.exists(target)
    assert fs.stat(target).st_size == len("content")


def test_realfs_mkstemp_and_replace(tmp_path):
    fs = RealFs()
    stream, temp_name = fs.mkstemp(tmp_path, ".tmp-", ".json", binary=False)
    with stream:
        stream.write("data")
    target = tmp_path / "final.json"
    fs.replace(temp_name, target)
    assert target.read_text() == "data"
    assert not fs.exists(temp_name)


def test_unlink_missing_ok_contract(tmp_path):
    fs = RealFs()
    ghost = tmp_path / "ghost"
    assert fs.unlink(ghost, missing_ok=True) is False
    with pytest.raises(FileNotFoundError):
        fs.unlink(ghost)
    present = tmp_path / "present"
    present.touch()
    assert fs.unlink(present, missing_ok=True) is True
    assert not present.exists()


def test_glob_is_sorted(tmp_path):
    fs = RealFs()
    for name in ("c.json", "a.json", "b.json", "skip.txt"):
        (tmp_path / name).touch()
    names = [path.name for path in fs.glob(tmp_path, "*.json")]
    assert names == ["a.json", "b.json", "c.json"]


def test_fsync_dir_is_best_effort_on_missing_dir(tmp_path):
    RealFs().fsync_dir(tmp_path / "no-such-dir")  # must not raise


def test_crash_point_is_a_noop_on_realfs():
    REAL_FS.crash_point("store.save.pre_replace")


def test_registry_registers_idempotently():
    name = register_crash_point("test.point.alpha", "a test point")
    assert name == "test.point.alpha"
    register_crash_point("test.point.alpha", "a test point")  # same: fine
    assert "test.point.alpha" in crash_points()
    assert crash_point_description("test.point.alpha") == "a test point"
    with pytest.raises(ValueError):
        register_crash_point("test.point.alpha", "a different description")
    _CRASH_POINTS.pop("test.point.alpha")


def test_registry_lists_every_persistence_write_path():
    # Registration happens when the persistence modules import.
    import repro.api.store  # noqa: F401
    import repro.cluster.artifacts  # noqa: F401
    import repro.cluster.journal  # noqa: F401

    registered = crash_points()
    assert set(registered) >= {
        "store.save.pre_replace",
        "store.save.post_replace",
        "cache.store.pre_replace",
        "cache.store.post_replace",
        "journal.append.pre_write",
        "journal.append.pre_fsync",
        "journal.append.post_fsync",
    }
    assert list(registered) == sorted(registered)


def test_simulated_crash_is_not_an_exception():
    crash = SimulatedCrash("some.point")
    assert crash.point == "some.point"
    assert isinstance(crash, BaseException)
    assert not isinstance(crash, Exception), (
        "degradation code catching Exception must never swallow a crash")


def test_default_fs_install_and_restore():
    original = default_fs()
    replacement = RealFs()
    previous = set_default_fs(replacement)
    try:
        assert previous is original
        assert default_fs() is replacement
    finally:
        set_default_fs(original)
    assert default_fs() is original


def test_use_fs_restores_on_exit_and_error():
    original = default_fs()
    replacement = RealFs()
    with use_fs(replacement) as installed:
        assert installed is replacement
        assert default_fs() is replacement
    assert default_fs() is original
    with pytest.raises(RuntimeError):
        with use_fs(replacement):
            raise RuntimeError("boom")
    assert default_fs() is original
