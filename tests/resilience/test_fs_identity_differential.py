"""Identity differential: an empty fault plan must be invisible.

A :class:`FaultFs` with no script, zero rates and no armed crash point
must be byte-identical to :class:`RealFs` — both for a fixed filesystem
op sequence and for a whole cluster campaign (store, journal and cache
trees compared modulo wall-clock fields, the one legitimate
nondeterminism between two runs).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api import CampaignSpec, ResultStore
from repro.cluster import ClusterEngine
from repro.resilience import FaultFs, RealFs, use_fs
from repro.testing import small_config
from repro.uarch.structures import TargetStructure

SMALL = small_config()


def spec() -> CampaignSpec:
    return CampaignSpec(
        workload="sha", structure=TargetStructure.RF, config=SMALL,
        scale=1, faults=40, seed=0, method="comprehensive",
    )


# ----------------------------------------------------------------------
# Tree comparison, wall-clock normalised
# ----------------------------------------------------------------------

def _scrub(value):
    if isinstance(value, dict):
        return {key: (0.0 if "wall_clock" in key else _scrub(item))
                for key, item in value.items()}
    if isinstance(value, list):
        return [_scrub(item) for item in value]
    return value


def _normalise(path: Path) -> bytes:
    """File bytes, with wall-clock fields zeroed in JSON/JSONL content.

    JSONL records are compared as a *sorted set*: journals append shard
    records in completion order, which varies with pool scheduling even
    between two RealFs runs (the merge sorts, so order carries no
    meaning)."""
    raw = path.read_bytes()
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError:
        return raw
    try:  # a single (possibly pretty-printed) JSON document
        scrubbed = [json.dumps(_scrub(json.loads(text)), sort_keys=True)]
    except json.JSONDecodeError:
        try:  # JSONL: one record per line
            scrubbed = sorted(
                json.dumps(_scrub(json.loads(line)), sort_keys=True)
                for line in text.splitlines() if line)
        except json.JSONDecodeError:
            return raw
    return "\n".join(scrubbed).encode("utf-8")


def tree_of(root: Path):
    return {
        str(path.relative_to(root)): _normalise(path)
        for path in sorted(root.rglob("*")) if path.is_file()
    }


# ----------------------------------------------------------------------
# 1. Fixed op sequence
# ----------------------------------------------------------------------

def exercise(fs, root: Path):
    observations = []
    nested = root / "a" / "b"
    fs.mkdir(nested, parents=True)
    target = nested / "file.txt"
    with fs.open(target, "w", encoding="utf-8") as stream:
        stream.write("line one\n")
        stream.flush()
        fs.fsync(stream)
    with fs.open(target, "a", encoding="utf-8") as stream:
        stream.write("line two\n")
        stream.flush()
        fs.fsync(stream)
    stream, temp_name = fs.mkstemp(nested, ".tmp-", ".bin", binary=True)
    with stream:
        stream.write(b"\x00\x01payload")
        stream.flush()
        fs.fsync(stream)
    fs.replace(temp_name, nested / "artifact.bin")
    fs.fsync_dir(nested)
    fs.touch(root / "marker")
    fs.utime(root / "marker")
    fs.touch(root / "doomed")
    observations.append(fs.unlink(root / "doomed", missing_ok=True))
    observations.append(fs.unlink(root / "doomed", missing_ok=True))
    observations.append(fs.exists(target))
    observations.append(fs.stat(target).st_size)
    observations.append([p.name for p in fs.glob(nested, "*")])
    with fs.open(target, "r", encoding="utf-8") as stream:
        observations.append(stream.read())
    with fs.open(nested / "artifact.bin", "rb") as stream:
        observations.append(stream.read())
    return observations


def test_fixed_op_sequence_is_byte_identical(tmp_path):
    real_root = tmp_path / "real"
    fault_root = tmp_path / "fault"
    real_root.mkdir()
    fault_root.mkdir()

    fault_fs = FaultFs()
    real_observed = exercise(RealFs(), real_root)
    fault_observed = exercise(fault_fs, fault_root)

    assert fault_observed == real_observed
    assert tree_of(fault_root) == tree_of(real_root)
    assert fault_fs.injected == {}
    assert fault_fs.fired == []
    # Even a post-hoc reopen must not perturb a fault-free tree: every
    # byte was made durable the same way the real fs would have.
    fault_fs.reopen()
    assert tree_of(fault_root) == tree_of(real_root)


# ----------------------------------------------------------------------
# 2. Whole campaign
# ----------------------------------------------------------------------

def run_campaign(root: Path, fault_free: bool):
    def go():
        store = ResultStore(root / "store")
        engine = ClusterEngine(max_workers=2, shard_size=5,
                               cache_dir=root / "cache")
        return engine.run([spec()], store=store)[0]

    if fault_free:
        fs = FaultFs()
        with use_fs(fs):
            outcome = go()
        assert fs.injected == {}, "an empty plan must inject nothing"
        return outcome
    return go()


def test_campaign_under_empty_faultfs_is_identical(tmp_path):
    real_root = tmp_path / "real"
    fault_root = tmp_path / "fault"
    real = run_campaign(real_root, fault_free=False)
    faulted = run_campaign(fault_root, fault_free=True)

    assert (faulted.classification_fingerprint()
            == real.classification_fingerprint())
    real_tree = tree_of(real_root)
    fault_tree = tree_of(fault_root)
    assert sorted(real_tree) == sorted(fault_tree), "same files on disk"
    for name in real_tree:
        assert fault_tree[name] == real_tree[name], (
            f"{name} differs beyond wall-clock fields")
