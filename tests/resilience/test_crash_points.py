"""Crash-point harness: crash at every registered point, reopen, resume.

For every crash point registered by the persistence layer, a campaign is
run under a :class:`FaultFs` armed to crash there.  :meth:`FaultFs.reopen`
then rolls the disk back to what a real ``kill -9`` could have left
(unfsynced bytes truncated, un-dirsynced renames undone), and a fresh
engine on the real filesystem re-runs the campaign.  The recovered
outcome — and the stored one — must be bit-identical (classification
fingerprint) to an undisturbed serial run.

The process-pool engine persists outcomes *inside* its worker processes;
on fork-start platforms the workers inherit the parent's armed FaultFs,
so the crash fires in the worker and surfaces through the future — the
same harness applies.
"""

from __future__ import annotations

import pytest

import repro.api.store  # noqa: F401  (registers store.save.* crash points)
import repro.cluster.artifacts  # noqa: F401  (cache.store.*)
import repro.cluster.journal  # noqa: F401  (journal.append.*)
from repro.api import CampaignSpec, ResultStore, SerialEngine
from repro.api.engine import make_engine
from repro.cluster import ClusterEngine
from repro.cluster.remote import RemoteClusterEngine
from repro.cluster.transport import FakeTransport
from repro.resilience import FaultFs, SimulatedCrash, crash_points, use_fs
from repro.testing import small_config
from repro.uarch.structures import TargetStructure

SMALL = small_config()

ALL_POINTS = (
    "store.save.pre_replace",
    "store.save.post_replace",
    "cache.store.pre_replace",
    "cache.store.post_replace",
    "journal.append.pre_write",
    "journal.append.pre_fsync",
    "journal.append.post_fsync",
)

#: (point, hit): every point on its first hit, and the journal points
#: again mid-campaign (the 3rd append is the 2nd shard record).
CRASH_MATRIX = [(point, 1) for point in ALL_POINTS] + [
    ("journal.append.pre_write", 3),
    ("journal.append.pre_fsync", 3),
    ("journal.append.post_fsync", 3),
]


def spec() -> CampaignSpec:
    return CampaignSpec(
        workload="sha", structure=TargetStructure.RF, config=SMALL,
        scale=1, faults=40, seed=0, method="comprehensive",
    )


@pytest.fixture(scope="module")
def reference():
    return SerialEngine().run([spec()])[0].classification_fingerprint()


def test_registry_matches_harness_matrix():
    """New crash points must be added to this harness to ship."""
    assert sorted(crash_points()) == sorted(ALL_POINTS)


def crash_then_recover(tmp_path, make, point, hit, reference):
    """Run ``make()`` under an armed FaultFs, crash, reopen, re-run clean."""
    fs = FaultFs(crash_at=point, crash_on_hit=hit)
    with use_fs(fs):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(SimulatedCrash) as crash:
            make().run([spec()], store=store)
    assert crash.value.point == point
    assert fs.crash_hits[point] == hit
    fs.reopen()  # the kill: unfsynced bytes and un-dirsynced renames gone

    recovery_store = ResultStore(tmp_path / "store")
    outcome = make().run([spec()], store=recovery_store)[0]
    assert outcome.classification_fingerprint() == reference
    stored = recovery_store.get(spec().run_id())
    assert stored.classification_fingerprint() == reference
    return outcome


# ----------------------------------------------------------------------
# Cluster engine: the full matrix.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("point,hit", CRASH_MATRIX,
                         ids=[f"{p}@{h}" for p, h in CRASH_MATRIX])
def test_cluster_engine_recovers_from_every_crash_point(
        point, hit, reference, tmp_path):
    def make():
        return ClusterEngine(max_workers=2, shard_size=5,
                             cache_dir=tmp_path / "cache")

    crash_then_recover(tmp_path, make, point, hit, reference)


def test_cluster_recovery_reuses_durably_journaled_shards(reference, tmp_path):
    """A mid-campaign journal crash must not re-execute journaled shards."""
    fs = FaultFs(crash_at="journal.append.pre_write", crash_on_hit=4)
    with use_fs(fs):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(SimulatedCrash):
            ClusterEngine(max_workers=2, shard_size=5,
                          cache_dir=tmp_path / "cache").run([spec()],
                                                            store=store)
    fs.reopen()
    recovered = ClusterEngine(max_workers=2, shard_size=5,
                              cache_dir=tmp_path / "cache")
    recovery_store = ResultStore(tmp_path / "store")
    outcome = recovered.run([spec()], store=recovery_store)[0]
    assert outcome.classification_fingerprint() == reference
    # Hits 1-3 were the header and two shard appends, all fsynced whole.
    assert recovered.stats["shards_reused"] == 2
    assert recovered.stats["shards_executed"] == (
        recovered.stats["shards_total"] - 2)


# ----------------------------------------------------------------------
# Remote engine (FakeTransport): representative points on the
# coordinator's persistence path.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("point,hit", [
    ("store.save.pre_replace", 1),
    ("store.save.post_replace", 1),
    ("journal.append.pre_fsync", 3),
], ids=lambda value: f"{value}" if isinstance(value, str) else "")
def test_remote_engine_recovers_via_fake_transport(
        point, hit, reference, tmp_path):
    def make():
        return RemoteClusterEngine(
            transport=FakeTransport(workers=3, schedule=[]),
            shard_size=5, cache_dir=tmp_path / "cache", lease_timeout=4.0,
        )

    crash_then_recover(tmp_path, make, point, hit, reference)


# ----------------------------------------------------------------------
# Serial and checkpoint engines: the store is their only durable write.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name", ["serial", "checkpoint"])
@pytest.mark.parametrize("point", ["store.save.pre_replace",
                                   "store.save.post_replace"])
def test_in_process_engines_recover_from_store_crashes(
        engine_name, point, reference, tmp_path):
    def make():
        return make_engine(engine_name)

    crash_then_recover(tmp_path, make, point, 1, reference)


@pytest.mark.parametrize("point", ["store.save.pre_replace",
                                   "store.save.post_replace"])
def test_process_engine_recovers_from_worker_store_crashes(
        point, reference, tmp_path):
    """Pool workers fork the parent's FaultFs, so the armed crash fires
    *inside the worker* and surfaces through the future — recovery must
    still converge on the serial fingerprint."""
    fs = FaultFs(crash_at=point)
    with use_fs(fs):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(SimulatedCrash):
            make_engine("process", max_workers=2).run([spec()], store=store)
    fs.reopen()
    recovery_store = ResultStore(tmp_path / "store")
    outcome = make_engine("process", max_workers=2).run(
        [spec()], store=recovery_store)[0]
    assert outcome.classification_fingerprint() == reference
    assert recovery_store.get(
        spec().run_id()).classification_fingerprint() == reference
