"""FaultFs: seeded schedules, scripts, crash-loss model, reopen semantics."""

import errno

import pytest

from repro.resilience import (
    DEFAULT_CHAOS_RATES,
    FAULT_KINDS,
    FaultFs,
    SimulatedCrash,
)


def write_file(fs, path, data):
    with fs.open(path, "wb") as stream:
        stream.write(data)
        stream.flush()
        fs.fsync(stream)


def run_probe(fs, tmp_path):
    """A fixed op sequence; returns the fault kind observed at each step."""
    observed = []
    for index in range(40):
        target = tmp_path / f"probe-{index}.bin"
        try:
            write_file(fs, target, b"x" * 16)
            observed.append("ok")
        except OSError as error:
            observed.append(errno.errorcode.get(error.errno, "?"))
    return observed


# ----------------------------------------------------------------------
# Seeded rate faults
# ----------------------------------------------------------------------

def test_same_seed_same_schedule(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    first = run_probe(FaultFs(seed=7, rates=DEFAULT_CHAOS_RATES), tmp_path / "a")
    second = run_probe(FaultFs(seed=7, rates=DEFAULT_CHAOS_RATES), tmp_path / "b")
    assert first == second
    assert any(step != "ok" for step in first), "seed 7 must inject something"


def test_different_seed_different_schedule(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    first = run_probe(FaultFs(seed=7, rates=DEFAULT_CHAOS_RATES), tmp_path / "a")
    second = run_probe(FaultFs(seed=8, rates=DEFAULT_CHAOS_RATES), tmp_path / "b")
    assert first != second


def test_rate_faults_are_transient_by_construction(tmp_path):
    """The same op kind never faults twice in a row, even at 90% rates."""
    fs = FaultFs(seed=3, rates={"eio": 0.9})
    decisions = [fs._decide("write", "probe") for _ in range(200)]
    assert "eio" in decisions
    for previous, current in zip(decisions, decisions[1:]):
        assert not (previous != "ok" and current != "ok"), (
            "two consecutive faults on one op kind would defeat retries")
    # End to end on a single-op call: one retry always succeeds.
    target = tmp_path / "sub"
    for _ in range(50):
        try:
            fs.mkdir(target, exist_ok=True)
        except OSError:
            fs.mkdir(target, exist_ok=True)  # the retry must succeed
    assert fs.injected.get("eio", 0) > 0


def test_read_ops_are_never_rate_faulted(tmp_path):
    target = tmp_path / "file.txt"
    target.write_text("content")
    fs = FaultFs(seed=1, rates={kind: 1.0 for kind in ("eio", "enospc")})
    for _ in range(20):
        with fs.open(target, "r", encoding="utf-8") as stream:
            assert stream.read() == "content"
        assert fs.stat(target).st_size == len("content")
        assert fs.glob(tmp_path, "*.txt")


# ----------------------------------------------------------------------
# Scripts
# ----------------------------------------------------------------------

def test_scripted_write_faults_in_order(tmp_path):
    fs = FaultFs(script={"write": ["eio", "enospc", "ok"]})
    target = tmp_path / "file.bin"
    with pytest.raises(OSError) as eio:
        write_file(fs, target, b"one")
    assert eio.value.errno == errno.EIO
    with pytest.raises(OSError) as enospc:
        write_file(fs, target, b"two")
    assert enospc.value.errno == errno.ENOSPC
    write_file(fs, target, b"three")  # script exhausted -> clean
    assert target.read_bytes() == b"three"
    assert fs.injected == {"eio": 1, "enospc": 1}


def test_scripted_torn_write_half_bytes(tmp_path):
    fs = FaultFs(script={"write": ["torn"]})
    target = tmp_path / "file.bin"
    with fs.open(target, "wb") as stream:
        with pytest.raises(OSError) as error:
            stream.write(b"0123456789")
        assert error.value.errno == errno.EIO
    assert target.read_bytes() == b"01234", "a torn write leaves half"


def test_scripted_enoent_on_unlink(tmp_path):
    target = tmp_path / "file.bin"
    target.write_bytes(b"x")
    fs = FaultFs(script={"unlink": ["enoent"]})
    assert fs.unlink(target, missing_ok=True) is False
    assert target.exists(), "injected ENOENT must not really unlink"
    assert fs.unlink(target, missing_ok=True) is True


def test_script_can_make_faults_persistent(tmp_path):
    fs = FaultFs(script={"mkstemp": ["enospc"] * 10})
    for _ in range(10):
        with pytest.raises(OSError) as error:
            fs.mkstemp(tmp_path, ".tmp-", ".json", binary=False)
        assert error.value.errno == errno.ENOSPC


def test_validation_rejects_bad_plans():
    with pytest.raises(ValueError):
        FaultFs(rates={"bogus": 0.5})
    with pytest.raises(ValueError):
        FaultFs(rates={"eio": 1.5})
    with pytest.raises(ValueError):
        FaultFs(script={"write": ["explode"]})
    with pytest.raises(ValueError):
        FaultFs(crash_at="store.save.pre_replace", crash_on_hit=0)
    assert set(FAULT_KINDS) == {"eio", "enospc", "torn", "lie", "enoent"}


# ----------------------------------------------------------------------
# Crash points
# ----------------------------------------------------------------------

def test_crash_at_fires_on_configured_hit():
    fs = FaultFs(crash_at="journal.append.pre_fsync", crash_on_hit=3)
    fs.crash_point("journal.append.pre_fsync")
    fs.crash_point("journal.append.pre_fsync")
    fs.crash_point("store.save.pre_replace")  # different point: never fires
    with pytest.raises(SimulatedCrash) as crash:
        fs.crash_point("journal.append.pre_fsync")
    assert crash.value.point == "journal.append.pre_fsync"
    assert fs.crashed
    assert fs.fired == ["journal.append.pre_fsync"]
    assert fs.crash_hits == {
        "journal.append.pre_fsync": 3,
        "store.save.pre_replace": 1,
    }
    # The armed hit already fired; later hits of the same point pass.
    fs.crash_point("journal.append.pre_fsync")


# ----------------------------------------------------------------------
# Crash-loss model: reopen()
# ----------------------------------------------------------------------

def test_reopen_truncates_unfsynced_bytes(tmp_path):
    fs = FaultFs()
    target = tmp_path / "file.bin"
    with fs.open(target, "wb") as stream:
        stream.write(b"durable!")
        stream.flush()
        fs.fsync(stream)
        stream.write(b"-volatile")
    assert target.read_bytes() == b"durable!-volatile"
    fs.reopen()
    assert target.read_bytes() == b"durable!", (
        "bytes written after the last real fsync are lost by a crash")


def test_lying_fsync_does_not_advance_durability(tmp_path):
    fs = FaultFs(script={"fsync": ["lie"]})
    target = tmp_path / "file.bin"
    write_file(fs, target, b"payload")  # the fsync lies: reports success
    assert target.read_bytes() == b"payload"
    fs.reopen()
    assert target.read_bytes() == b"", "a lying fsync made nothing durable"


def test_reopen_undoes_rename_without_dirsync(tmp_path):
    fs = FaultFs()
    temp = tmp_path / "file.tmp"
    target = tmp_path / "file.json"
    write_file(fs, temp, b"payload")
    fs.replace(temp, target)
    assert target.exists()
    fs.reopen()
    assert not target.exists(), (
        "a rename is not durable until the parent directory is fsynced")


def test_dirsync_makes_rename_survive_reopen(tmp_path):
    fs = FaultFs()
    temp = tmp_path / "file.tmp"
    target = tmp_path / "file.json"
    write_file(fs, temp, b"payload")
    fs.replace(temp, target)
    fs.fsync_dir(tmp_path)
    fs.reopen()
    assert target.read_bytes() == b"payload"


def test_overwrite_rename_is_not_undone(tmp_path):
    fs = FaultFs()
    target = tmp_path / "file.json"
    target.write_bytes(b"old")
    temp = tmp_path / "file.tmp"
    write_file(fs, temp, b"new")
    fs.replace(temp, target)
    fs.reopen()
    assert target.read_bytes() == b"new", (
        "overwrite-renames are non-undoable: the old entry is gone")


def test_reopen_is_idempotent_and_disarms(tmp_path):
    fs = FaultFs(crash_at="store.save.pre_replace")
    with pytest.raises(SimulatedCrash):
        fs.crash_point("store.save.pre_replace")
    fs.reopen()
    assert not fs.crashed
    assert fs.crash_at is None
    fs.crash_point("store.save.pre_replace")  # disarmed: no crash
    fs.reopen()  # idempotent


def test_empty_plan_is_transparent(tmp_path):
    """No script, no rates, no crash point: behaves exactly like RealFs."""
    fs = FaultFs()
    target = tmp_path / "dir" / "file.txt"
    fs.mkdir(target.parent, parents=True)
    with fs.open(target, "w", encoding="utf-8") as stream:
        stream.write("content")
        stream.flush()
        fs.fsync(stream)
    fs.fsync_dir(target.parent)
    fs.utime(target)
    fs.touch(tmp_path / "marker")
    assert fs.exists(target)
    assert [p.name for p in fs.glob(tmp_path, "*")] == ["dir", "marker"]
    assert fs.injected == {}
    assert fs.fired == []
    assert "FaultFs(seed=0, 0 faults injected, 0 crashes)" == fs.describe()
