"""RetryPolicy: backoff math, exhaustion semantics, deadlines, disk defaults."""

import errno

import pytest

from repro.resilience import (
    RetryBudgetExceeded,
    RetryPolicy,
    disk_retry_policy,
    is_transient_disk_error,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class Flaky:
    """Fails the first ``failures`` calls with the given errors."""

    def __init__(self, failures, error=None):
        self.error = error or OSError(errno.EIO, "flaky")
        self.remaining = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error
        return "result"


def policy(**overrides):
    clock = FakeClock()
    fields = dict(sleep=clock.sleep, clock=clock.clock)
    fields.update(overrides)
    return RetryPolicy(**fields), clock


def test_delay_doubles_then_caps():
    p = RetryPolicy(backoff_base=0.05, backoff_cap=2.0)
    assert [p.delay_for(n) for n in range(7)] == [
        0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0]


def test_jitter_is_seeded_and_bounded():
    delays_a = [RetryPolicy(jitter=0.5, seed=11).delay_for(n) for n in range(5)]
    delays_b = [RetryPolicy(jitter=0.5, seed=11).delay_for(n) for n in range(5)]
    assert delays_a == delays_b, "same seed, same jitter stream"
    plain = RetryPolicy(jitter=0.0)
    for n, jittered in enumerate(delays_a):
        base = plain.delay_for(n)
        assert 0.5 * base <= jittered <= 1.5 * base


def test_succeeds_after_transient_failures():
    p, clock = policy(max_attempts=3, backoff_base=0.05)
    op = Flaky(failures=2)
    assert p.run(op) == "result"
    assert op.calls == 3
    assert clock.sleeps == [0.05, 0.1]


def test_exhaustion_reraises_last_underlying_error():
    p, _ = policy(max_attempts=3)
    op = Flaky(failures=99, error=OSError(errno.ENOSPC, "disk full"))
    with pytest.raises(OSError) as error:
        p.run(op)
    assert error.value.errno == errno.ENOSPC
    assert op.calls == 3


def test_non_retryable_error_raises_immediately():
    p, clock = policy(max_attempts=5, retry_on=(ConnectionError,))
    op = Flaky(failures=99, error=ValueError("not transient"))
    with pytest.raises(ValueError):
        p.run(op)
    assert op.calls == 1
    assert clock.sleeps == []


def test_should_retry_predicate_filters_within_retry_on():
    p, _ = policy(max_attempts=5, retry_on=(OSError,),
                  should_retry=is_transient_disk_error)
    op = Flaky(failures=99, error=OSError(errno.EACCES, "denied"))
    with pytest.raises(OSError):
        p.run(op)
    assert op.calls == 1, "EACCES is not a transient disk error"


def test_deadline_raises_budget_error_with_cause():
    p, clock = policy(max_attempts=100, backoff_base=0.5,
                      backoff_cap=0.5, deadline=1.0)
    op = Flaky(failures=999)
    with pytest.raises(RetryBudgetExceeded) as budget:
        p.run(op, describe="probe-write")
    assert budget.value.operation == "probe-write"
    assert budget.value.deadline == 1.0
    assert isinstance(budget.value.__cause__, OSError)
    assert op.calls >= 2
    assert clock.now <= 1.0 + 1e-9, "sleeps are capped to the remaining budget"


def test_on_retry_hook_fires_per_retry_not_per_attempt():
    p, _ = policy(max_attempts=4)
    seen = []
    op = Flaky(failures=2)
    p.run(op, on_retry=lambda attempt, exc: seen.append((attempt, exc.errno)))
    assert seen == [(0, errno.EIO), (1, errno.EIO)]


def test_with_overrides_copies_and_replaces():
    base, clock = policy(max_attempts=3, backoff_base=0.05)
    derived = base.with_overrides(max_attempts=6, backoff_cap=0.1)
    assert derived is not base
    assert derived.max_attempts == 6
    assert derived.backoff_cap == 0.1
    assert derived.backoff_base == base.backoff_base
    assert derived.sleep == clock.sleep, "injected sleep survives the copy"
    assert base.max_attempts == 3


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline=0)


def test_disk_policy_absorbs_every_injectable_transient():
    for code in (errno.EINTR, errno.EAGAIN, errno.EIO, errno.ENOSPC):
        sleeps = []
        p = disk_retry_policy(sleep=sleeps.append)
        op = Flaky(failures=1, error=OSError(code, "transient"))
        assert p.run(op) == "result"
        assert len(sleeps) == 1
    assert not is_transient_disk_error(ValueError("nope"))
    assert not is_transient_disk_error(OSError(errno.EACCES, "denied"))
