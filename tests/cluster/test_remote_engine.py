"""Coordinator semantics under injected chaos, and remote-engine wiring.

Every scenario drives the real :class:`~repro.cluster.remote.Coordinator`
over a :class:`~repro.cluster.transport.FakeTransport` with a synthetic
(instant) executor, so the lease/steal/retry logic is tested at unit
speed; the integration suite replays the same chaos against real shard
execution.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.api.engine import ENGINES, make_engine
from repro.cluster.remote import (
    Coordinator,
    RemoteClusterEngine,
    parse_hosts,
    validate_shard_payload,
)
from repro.cluster.shards import FaultShard
from repro.cluster.transport import FakeTransport, ShardTask


def make_world(count: int):
    """``count`` synthetic single-fault shards plus their task lookup."""
    tasks, lookup = [], {}
    for index in range(count):
        shard = FaultShard("runX", index, "RF", ((index, 0, 0, 5),))
        task = ShardTask(
            task_id=f"0:{shard.shard_id()}",
            spec={}, shard=shard.to_dict(),
            checkpoint_interval=None, obs_enabled=False,
            warm_key="golden-key",
        )
        tasks.append(task)
        lookup[task.task_id] = shard
    return tasks, lookup


def synthetic_executor(task: ShardTask) -> dict:
    shard = FaultShard.from_dict(task.shard)
    return {
        "shard_id": shard.shard_id(),
        "golden_cache_hit": True,
        "outcomes": {str(fault_id): ["Masked", 100 + fault_id]
                     for fault_id in shard.fault_ids},
        "obs": None,
    }


def run_chaos(count: int, workers: int, schedule, *,
              lease_timeout: float = 3.0, max_attempts: int = 5,
              protect_last_host: bool = True):
    tasks, lookup = make_world(count)
    transport = FakeTransport(workers=workers, schedule=schedule,
                              executor=synthetic_executor,
                              protect_last_host=protect_last_host)
    sleeps: list = []
    coordinator = Coordinator(
        transport, lease_timeout=lease_timeout, poll_interval=0.0,
        max_attempts=max_attempts, sleep=sleeps.append,
        describe=lambda task: f"task {task.task_id}",
    )
    delivered: list = []
    coordinator.run(
        tasks,
        lambda task, payload: delivered.append((task.task_id, payload)),
        validate=lambda task, payload: validate_shard_payload(
            lookup[task.task_id], payload),
    )
    return coordinator, delivered, sleeps, tasks


def test_clean_run_completes_everything_exactly_once():
    coordinator, delivered, sleeps, tasks = run_chaos(6, 3, [])
    assert sorted(tid for tid, _ in delivered) == sorted(
        task.task_id for task in tasks)
    assert coordinator.stats["completed"] == 6
    assert coordinator.stats["steals"] == 0
    assert coordinator.stats["hosts_lost"] == 0
    assert coordinator.stats["duplicates"] == 0
    assert sleeps == []


def test_host_death_mid_shard_steals_the_lease():
    coordinator, delivered, _, tasks = run_chaos(4, 3, ["die"])
    assert sorted(tid for tid, _ in delivered) == sorted(
        task.task_id for task in tasks)
    assert coordinator.stats["hosts_lost"] == 1
    assert coordinator.stats["steals"] == 1
    # The lost shard was re-executed elsewhere, not dropped.
    assert coordinator.stats["completed"] == 4


def test_silent_host_misses_heartbeat_and_late_result_is_dropped():
    # Host 0 goes silent for 8 ticks (lease expires at 3); host 1 is
    # merely slow and must NOT be stolen from; the stale delivery at
    # tick 8 arrives after the steal completed the shard elsewhere.
    coordinator, delivered, _, tasks = run_chaos(
        3, 3, ["late:8", "slow:12", "run"])
    assert sorted(tid for tid, _ in delivered) == sorted(
        task.task_id for task in tasks)
    assert coordinator.stats["heartbeat_misses"] == 1
    assert coordinator.stats["steals"] == 1
    assert coordinator.stats["duplicates"] == 1
    assert coordinator.stats["completed"] == 3


def test_torn_result_is_requeued_not_journaled():
    coordinator, delivered, _, _ = run_chaos(1, 1, ["torn"])
    assert coordinator.stats["torn_results"] == 1
    assert coordinator.stats["completed"] == 1
    # Only the intact payload reached on_result.
    [(task_id, payload)] = delivered
    assert len(payload["outcomes"]) == 1


def test_duplicate_delivery_is_counted_and_dropped():
    coordinator, delivered, _, _ = run_chaos(2, 2, ["duplicate"])
    assert coordinator.stats["duplicates"] == 1
    assert len(delivered) == 2


def test_transient_failure_retries_with_backoff():
    coordinator, delivered, sleeps, _ = run_chaos(1, 1, ["fail", "fail"])
    assert coordinator.stats["retries"] == 2
    assert coordinator.stats["completed"] == 1
    assert len(sleeps) == 2
    assert sleeps[1] > sleeps[0], "backoff must grow"


def test_shard_gives_up_after_max_attempts():
    with pytest.raises(RuntimeError, match="failed 3 times, giving up"):
        run_chaos(1, 1, ["fail"] * 10, max_attempts=3)


def test_fatal_worker_failure_aborts_the_run():
    with pytest.raises(RuntimeError, match="failed in a worker"):
        run_chaos(2, 2, ["fatal"])


def test_all_hosts_lost_raises_with_resume_hint():
    with pytest.raises(RuntimeError, match="all 2 hosts lost"):
        run_chaos(4, 2, ["die", "die"], protect_last_host=False)


def test_hosts_are_warmed_once_per_golden_identity():
    tasks, lookup = make_world(8)
    transport = FakeTransport(workers=2, executor=synthetic_executor)
    coordinator = Coordinator(transport, poll_interval=0.0,
                              sleep=lambda _seconds: None)
    coordinator.run(tasks, lambda task, payload: None)
    # 8 shards share one warm key: each host warms at most once.
    assert len(transport.warms) == len(set(transport.warms))
    assert {key for _, key in transport.warms} == {"golden-key"}
    assert coordinator.stats["warms"] == len(transport.warms)


def test_coordinator_reports_chaos_to_obs():
    with obs.observe() as ctx:
        run_chaos(3, 3, ["late:8", "duplicate", "die"])
        totals = {
            name: ctx.registry.total(name)
            for name in (
                "repro_remote_shard_steals_total",
                "repro_remote_heartbeat_misses_total",
                "repro_remote_duplicate_results_total",
                "repro_remote_hosts_lost_total",
                "repro_remote_host_shards_total",
            )
        }
    assert totals["repro_remote_shard_steals_total"] >= 1
    assert totals["repro_remote_heartbeat_misses_total"] >= 1
    assert totals["repro_remote_duplicate_results_total"] >= 1
    assert totals["repro_remote_hosts_lost_total"] >= 1
    assert totals["repro_remote_host_shards_total"] == 3
    assert ctx.registry.value("repro_pool_queue_depth") == 0.0


def test_rejects_duplicate_task_ids():
    tasks, _ = make_world(1)
    transport = FakeTransport(workers=1, executor=synthetic_executor)
    coordinator = Coordinator(transport)
    with pytest.raises(ValueError, match="duplicate task ids"):
        coordinator.run(tasks + tasks, lambda task, payload: None)


def test_coordinator_validates_max_attempts():
    transport = FakeTransport(workers=1, executor=synthetic_executor)
    with pytest.raises(ValueError, match="max_attempts"):
        Coordinator(transport, max_attempts=0)


# ----------------------------------------------------------------------
# Payload validation
# ----------------------------------------------------------------------
def test_validate_shard_payload_catalogue():
    shard = FaultShard("runX", 0, "RF", ((1, 0, 0, 5), (2, 0, 1, 9)))
    good = {"shard_id": shard.shard_id(), "golden_cache_hit": True,
            "outcomes": {"1": ["Masked", 10], "2": ["SDC", 11]}}
    assert validate_shard_payload(shard, good) is None
    assert "mapping" in validate_shard_payload(shard, None)
    assert "claims shard" in validate_shard_payload(
        shard, {**good, "shard_id": "somebody-else"})
    assert "no outcomes" in validate_shard_payload(
        shard, {"shard_id": shard.shard_id()})
    assert "torn" in validate_shard_payload(
        shard, {**good, "outcomes": {"1": ["Masked", 10]}})
    assert "torn" in validate_shard_payload(
        shard, {**good, "outcomes": {**good["outcomes"],
                                     "3": ["Masked", 12]}})
    assert "non-integer" in validate_shard_payload(
        shard, {**good, "outcomes": {"one": ["Masked", 10]}})
    assert "malformed" in validate_shard_payload(
        shard, {**good, "outcomes": {"1": ["Masked", 10], "2": "SDC"}})


# ----------------------------------------------------------------------
# Engine construction and CLI wiring
# ----------------------------------------------------------------------
def test_remote_is_a_registered_engine():
    assert "remote" in ENGINES
    engine = make_engine("remote", hosts="127.0.0.1:7651")
    assert isinstance(engine, RemoteClusterEngine)
    assert engine.name == "remote"


def test_remote_engine_requires_hosts_or_transport():
    with pytest.raises(ValueError, match="--hosts"):
        RemoteClusterEngine()
    engine = RemoteClusterEngine(transport=FakeTransport(workers=1))
    assert engine.transport is not None


def test_make_engine_rejects_misplaced_flags():
    with pytest.raises(ValueError, match="hosts only applies"):
        make_engine("serial", hosts="127.0.0.1:7651")
    with pytest.raises(ValueError, match="workers does not apply"):
        make_engine("remote", hosts="127.0.0.1:7651", max_workers=4)
    with pytest.raises(ValueError):
        make_engine("remote")  # no hosts


def test_parse_hosts_formats():
    assert parse_hosts("10.0.0.5:7651, 10.0.0.6:7651,") == [
        "10.0.0.5:7651", "10.0.0.6:7651"]
    assert parse_hosts(["a:1", "b:2"]) == ["a:1", "b:2"]
    assert parse_hosts(None) == []
    with pytest.raises(ValueError, match="HOST:PORT"):
        parse_hosts("nocolon")
    with pytest.raises(ValueError, match="HOST:PORT"):
        parse_hosts("host:notaport")


def test_remote_engine_cache_dir_flows_into_transport(tmp_path):
    transport = FakeTransport(workers=1, executor=synthetic_executor)
    engine = RemoteClusterEngine(transport=transport,
                                 cache_dir=tmp_path / "cache")
    assert transport.cache_dir is None
    engine._transport()
    assert transport.cache_dir == str(tmp_path / "cache")
