"""ArtifactCache: content addressing, atomicity, LRU cap, corruption."""

import pickle

import pytest

from repro.api.spec import CampaignSpec
from repro.cluster.artifacts import ArtifactCache, golden_cache_key
from repro.testing import small_config
from repro.uarch.structures import TargetStructure
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec(workload="sha", structure=TargetStructure.RF,
                        config=small_config(), scale=1, faults=40)


@pytest.fixture(scope="module")
def golden(spec):
    from repro.faults.golden import capture_golden

    program = get_workload(spec.workload).build(spec.scale)
    record = capture_golden(program, spec.config, trace=True,
                            checkpoint_interval=64)
    return record


def test_key_is_stable_and_config_sensitive(spec):
    assert golden_cache_key(spec) == golden_cache_key(spec.replace(faults=999))
    assert golden_cache_key(spec) == golden_cache_key(
        spec.replace(structure=TargetStructure.SQ, seed=7, method="both")
    )
    assert golden_cache_key(spec) != golden_cache_key(spec.replace(scale=2))
    assert golden_cache_key(spec) != golden_cache_key(
        spec.replace(config=small_config().with_register_file(128))
    )


def test_key_depends_on_interval_and_simulator_version(spec, monkeypatch):
    """A coarse cached timeline must never satisfy a finer request, and a
    new simulator version must never warm-start from an old golden."""
    assert golden_cache_key(spec, 16) != golden_cache_key(spec, 64)
    assert golden_cache_key(spec, 16) != golden_cache_key(spec, None)

    import repro.cluster.artifacts as artifacts_module

    before = golden_cache_key(spec, 16)
    monkeypatch.setattr(artifacts_module, "__version__", "999.0.0")
    assert golden_cache_key(spec, 16) != before


def test_round_trip_preserves_golden_and_timeline(tmp_path, spec, golden):
    cache = ArtifactCache(tmp_path)
    assert cache.load_golden(spec) is None
    assert cache.misses == 1
    cache.store_golden(spec, golden)
    loaded = cache.load_golden(spec)
    assert cache.hits == 1
    assert loaded.result == golden.result
    assert loaded.program.name == golden.program.name
    assert loaded.commit_log == golden.commit_log
    assert loaded.max_instructions == golden.max_instructions
    assert loaded.tracer is not None
    assert loaded.checkpoints is not None
    assert loaded.checkpoints.cycles == golden.checkpoints.cycles
    assert loaded.checkpoints.interval == golden.checkpoints.interval
    # The restored states are value-equal, not aliased.
    for left, right in zip(loaded.checkpoints.states(), golden.checkpoints.states()):
        assert left == right and left is not right


def test_store_is_atomic_no_stray_temp_files(tmp_path, spec, golden):
    cache = ArtifactCache(tmp_path)
    cache.store_golden(spec, golden)
    leftovers = [p.name for p in cache.golden_dir.iterdir()
                 if p.name.startswith(".tmp-")]
    assert leftovers == []
    assert cache.has_golden(spec)


def test_corrupt_artifact_is_a_miss_and_removed(tmp_path, spec, golden):
    cache = ArtifactCache(tmp_path)
    path = cache.store_golden(spec, golden)
    path.write_bytes(b"not a pickle")
    assert cache.load_golden(spec) is None
    assert not path.exists(), "corrupt artifact must not stay a miss forever"


def test_foreign_key_payload_rejected(tmp_path, spec, golden):
    cache = ArtifactCache(tmp_path)
    path = cache.store_golden(spec, golden)
    payload = pickle.loads(path.read_bytes())
    payload["key"] = "0" * 16
    path.write_bytes(pickle.dumps(payload))
    assert cache.load_golden(spec) is None


def test_lru_eviction_respects_cap(tmp_path, spec, golden):
    cache = ArtifactCache(tmp_path, max_bytes=None)
    cache.store_golden(spec, golden)
    size = cache.golden_path(spec).stat().st_size

    import os

    other = spec.replace(scale=2)
    capped = ArtifactCache(tmp_path, max_bytes=int(size * 1.5))
    # Make the first artifact distinctly older so LRU order is unambiguous.
    old = cache.golden_path(spec)
    stamp = old.stat().st_mtime - 60
    os.utime(old, (stamp, stamp))
    capped.store_golden(other, golden)
    assert capped.evictions >= 1
    assert not capped.has_golden(spec), "least recently used artifact evicted"
    assert capped.has_golden(other)


def test_stats_shape(tmp_path, spec):
    cache = ArtifactCache(tmp_path)
    cache.load_golden(spec)
    assert cache.stats() == {"hits": 0, "misses": 1, "stores": 0, "evictions": 0}
