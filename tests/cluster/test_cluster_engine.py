"""ClusterEngine wiring: registry, stores, progress, failures, resume guards."""

import pytest

from repro.api import CampaignSpec, ResultStore, make_engine
from repro.cluster import ClusterEngine, JournalError, RunJournal
from repro.uarch.structures import TargetStructure


def tiny_spec(**overrides):
    payload = dict(workload="sha", structure=TargetStructure.RF,
                   faults=30, scale=1, seed=0)
    payload.update(overrides)
    return CampaignSpec(**payload)


def test_make_engine_builds_cluster(tmp_path):
    engine = make_engine("cluster", max_workers=2, shard_size=9,
                         cache_dir=str(tmp_path), checkpoint_interval=50)
    assert isinstance(engine, ClusterEngine)
    assert engine.shard_size == 9
    assert engine.max_workers == 2
    assert engine.checkpoint_interval == 50
    assert not engine.resume


def test_make_engine_rejects_cluster_flags_elsewhere(tmp_path):
    with pytest.raises(ValueError, match="shard_size"):
        make_engine("serial", shard_size=10)
    with pytest.raises(ValueError, match="cache_dir"):
        make_engine("process", cache_dir=str(tmp_path))
    with pytest.raises(ValueError, match="resume"):
        make_engine("checkpoint", resume=True)
    with pytest.raises(ValueError, match="shard_size"):
        ClusterEngine(shard_size=0)


def test_empty_batch(tmp_path):
    assert ClusterEngine(cache_dir=tmp_path).run([]) == []


def test_store_short_circuits_a_stored_campaign(tmp_path):
    spec = tiny_spec()
    store = ResultStore(tmp_path / "store")
    engine = ClusterEngine(max_workers=1, shard_size=10,
                           cache_dir=tmp_path / "cache")
    first = engine.run([spec], store=store)[0]
    assert engine.stats["campaigns_from_store"] == 0
    again = engine.run([spec], store=store)[0]
    assert engine.stats["campaigns_from_store"] == 1
    assert engine.stats["shards_executed"] == 0
    assert again.to_dict() == first.to_dict()


def test_progress_counts_shards_and_finishes_complete(tmp_path):
    spec = tiny_spec(seed=1)
    events = []
    engine = ClusterEngine(max_workers=2, shard_size=5,
                           cache_dir=tmp_path / "cache")
    engine.run([spec], progress=lambda done, total: events.append((done, total)))
    assert events, "progress hook never fired"
    totals = {total for _, total in events}
    assert totals == {engine.stats["shards_total"]}
    dones = [done for done, _ in events]
    assert dones == sorted(dones)
    assert events[-1] == (engine.stats["shards_total"], engine.stats["shards_total"])


def test_worker_failure_surfaces_and_cancels(tmp_path, monkeypatch):
    """A failing shard must raise promptly, naming campaign and shard.

    The worker function is monkeypatched in the parent; the fork-started
    pool children inherit the patched module.
    """
    import repro.cluster.engine as engine_module

    def boom(*args, **kwargs):
        raise RuntimeError("injected shard failure")

    monkeypatch.setattr(engine_module, "_run_shard_worker", boom)
    engine = ClusterEngine(max_workers=1, shard_size=5,
                           cache_dir=tmp_path / "cache")
    with pytest.raises(RuntimeError, match="failed in a worker"):
        engine.run([tiny_spec(seed=2)])


def test_resume_rejects_a_mismatched_plan(tmp_path):
    spec = tiny_spec(seed=3)
    engine = ClusterEngine(max_workers=1, shard_size=5,
                           cache_dir=tmp_path / "cache")
    engine.run([spec])
    assert RunJournal.exists(engine.journal_dir, spec.run_id())
    mismatched = ClusterEngine(max_workers=1, shard_size=7,
                               cache_dir=tmp_path / "cache", resume=True)
    with pytest.raises(JournalError, match="shard plan"):
        mismatched.run([spec])


def test_rerun_without_resume_preserves_a_killed_runs_shards(tmp_path):
    """Re-running the same command after a kill must not truncate the
    journal the crash-safety story depends on."""
    import json

    from repro.cluster import journal_path

    spec = tiny_spec(seed=6)
    cache = tmp_path / "cache"
    first = ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache)
    outcome = first.run([spec])[0]
    shards = first.stats["shards_total"]

    # Fake a kill: the merged marker never landed and one shard is missing.
    path = journal_path(first.journal_dir, spec.run_id())
    lines = [line for line in path.read_text().splitlines(True)
             if json.loads(line).get("kind") != "merged"]
    path.write_text("".join(lines[:-1]))

    rerun = ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache)
    again = rerun.run([spec])[0]
    assert rerun.stats["shards_reused"] == shards - 1
    assert rerun.stats["shards_executed"] == 1
    assert again.classification_fingerprint() == outcome.classification_fingerprint()


def test_rerun_after_a_finished_run_starts_fresh(tmp_path):
    """A merged journal is a completed campaign: re-running re-executes."""
    spec = tiny_spec(seed=6)
    cache = tmp_path / "cache"
    ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache).run([spec])
    rerun = ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache)
    rerun.run([spec])
    assert rerun.stats["shards_reused"] == 0
    assert rerun.stats["shards_executed"] == rerun.stats["shards_total"]


def test_resume_without_journal_raises(tmp_path):
    engine = ClusterEngine(max_workers=1, cache_dir=tmp_path / "cache",
                           resume=True)
    with pytest.raises(JournalError, match="nothing to resume"):
        engine.run([tiny_spec(seed=7)])


def test_resume_of_a_complete_journal_reuses_everything(tmp_path):
    spec = tiny_spec(seed=4)
    cache = tmp_path / "cache"
    first = ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache)
    outcome = first.run([spec])[0]
    resumed = ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache,
                            resume=True)
    again = resumed.run([spec])[0]
    assert resumed.stats["shards_executed"] == 0
    assert resumed.stats["shards_reused"] == resumed.stats["shards_total"] > 0
    assert again.classification_fingerprint() == outcome.classification_fingerprint()


def test_checkpoint_interval_is_part_of_artifact_identity(tmp_path):
    """--checkpoint-interval must never be silently satisfied by a cached
    golden captured at a different spacing."""
    spec = tiny_spec(seed=5)
    cache = tmp_path / "cache"
    coarse = ClusterEngine(max_workers=1, cache_dir=cache, checkpoint_interval=48)
    coarse.run([spec])
    assert coarse.stats["golden_builds"] == 1

    fine = ClusterEngine(max_workers=1, cache_dir=cache, checkpoint_interval=16)
    fine.run([spec])
    assert fine.stats["golden_builds"] == 1, "different interval, new artifact"

    warm = ClusterEngine(max_workers=1, cache_dir=cache, checkpoint_interval=16)
    warm.run([spec])
    assert warm.stats["golden_builds"] == 0


def test_unknown_workload_fails_in_planning(tmp_path):
    engine = ClusterEngine(max_workers=1, cache_dir=tmp_path / "cache")
    with pytest.raises(KeyError):
        engine.run([CampaignSpec(workload="no-such-workload", faults=10)])
