"""RunJournal: append-only records, torn-line tolerance, plan validation."""

import json

import pytest

from repro.api.spec import CampaignSpec
from repro.cluster.journal import JournalError, RunJournal, journal_path
from repro.cluster.shards import FaultShard
from repro.uarch.structures import TargetStructure


def make_spec(**overrides):
    payload = dict(workload="sha", structure=TargetStructure.RF,
                   faults=40, scale=1)
    payload.update(overrides)
    return CampaignSpec(**payload)


def make_shards(spec, count=3, size=4):
    shards = []
    for index in range(count):
        faults = tuple(
            (index * size + pos, index, pos, 10 * index + pos)
            for pos in range(size)
        )
        shards.append(FaultShard(
            campaign_run_id=spec.run_id(), index=index,
            structure="RF", faults=faults,
        ))
    return shards


def outcomes_for(shard):
    return {fid: ("Masked", 100 + fid) for fid in shard.fault_ids}


def test_create_record_load_round_trip(tmp_path):
    spec = make_spec()
    shards = make_shards(spec)
    journal = RunJournal.create(tmp_path, spec, shards, shard_size=4,
                                checkpoint_interval=32)
    journal.record_shard(shards[0], outcomes_for(shards[0]), golden_cache_hit=True)
    journal.record_shard(shards[2], outcomes_for(shards[2]))

    loaded = RunJournal.load(tmp_path, spec.run_id())
    assert loaded.spec() == spec
    assert loaded.shard_size == 4
    assert loaded.checkpoint_interval == 32
    assert loaded.shard_ids == [s.shard_id() for s in shards]
    assert loaded.missing_shard_ids() == [shards[1].shard_id()]
    assert loaded.completed[shards[0].shard_id()] == outcomes_for(shards[0])
    assert loaded.worker_cache_hits == 1
    assert not loaded.merged

    loaded.record_merged({"shards": 3})
    assert RunJournal.load(tmp_path, spec.run_id()).merged


def test_create_truncates_a_previous_journal(tmp_path):
    spec = make_spec()
    shards = make_shards(spec)
    journal = RunJournal.create(tmp_path, spec, shards, shard_size=4)
    journal.record_shard(shards[0], outcomes_for(shards[0]))
    fresh = RunJournal.create(tmp_path, spec, shards, shard_size=4)
    assert fresh.completed == {}
    assert RunJournal.load(tmp_path, spec.run_id()).completed == {}


def test_torn_trailing_line_is_tolerated(tmp_path):
    spec = make_spec()
    shards = make_shards(spec)
    journal = RunJournal.create(tmp_path, spec, shards, shard_size=4)
    journal.record_shard(shards[0], outcomes_for(shards[0]))
    path = journal_path(tmp_path, spec.run_id())
    with open(path, "a", encoding="utf-8") as stream:
        stream.write('{"kind":"shard","shard_id":"tor')  # killed mid-append
    loaded = RunJournal.load(tmp_path, spec.run_id())
    assert set(loaded.completed) == {shards[0].shard_id()}


def test_torn_line_is_truncated_so_later_appends_stay_clean(tmp_path):
    """load() must remove the torn tail: a later record_shard appends at
    EOF, and gluing onto the fragment would corrupt the journal for good."""
    spec = make_spec()
    shards = make_shards(spec)
    journal = RunJournal.create(tmp_path, spec, shards, shard_size=4)
    journal.record_shard(shards[0], outcomes_for(shards[0]))
    path = journal_path(tmp_path, spec.run_id())
    with open(path, "a", encoding="utf-8") as stream:
        stream.write('{"kind":"shard","shard_id":"tor')

    loaded = RunJournal.load(tmp_path, spec.run_id())
    loaded.record_shard(shards[1], outcomes_for(shards[1]))
    reloaded = RunJournal.load(tmp_path, spec.run_id())
    assert set(reloaded.completed) == {s.shard_id() for s in shards[:2]}


def test_complete_final_line_missing_newline_is_repaired(tmp_path):
    """A kill exactly between record and newline must not corrupt appends."""
    spec = make_spec()
    shards = make_shards(spec)
    journal = RunJournal.create(tmp_path, spec, shards, shard_size=4)
    journal.record_shard(shards[0], outcomes_for(shards[0]))
    path = journal_path(tmp_path, spec.run_id())
    content = path.read_text()
    path.write_text(content.rstrip("\n"))  # strip the final terminator

    loaded = RunJournal.load(tmp_path, spec.run_id())
    assert set(loaded.completed) == {shards[0].shard_id()}
    loaded.record_shard(shards[1], outcomes_for(shards[1]))
    reloaded = RunJournal.load(tmp_path, spec.run_id())
    assert set(reloaded.completed) == {s.shard_id() for s in shards[:2]}


def test_foreign_simulator_version_rejected(tmp_path):
    spec = make_spec()
    RunJournal.create(tmp_path, spec, make_shards(spec), shard_size=4)
    path = journal_path(tmp_path, spec.run_id())
    header = json.loads(path.read_text().splitlines()[0])
    header["simulator"] = "0.0.0"
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(JournalError, match="simulator version"):
        RunJournal.load(tmp_path, spec.run_id())


def test_corrupt_interior_line_raises(tmp_path):
    spec = make_spec()
    shards = make_shards(spec)
    journal = RunJournal.create(tmp_path, spec, shards, shard_size=4)
    path = journal_path(tmp_path, spec.run_id())
    content = path.read_text()
    path.write_text("garbage not json\n" + content)
    with pytest.raises(JournalError, match="corrupt journal line 1"):
        RunJournal.load(tmp_path, spec.run_id())


def test_missing_journal_and_malformed_run_id(tmp_path):
    with pytest.raises(JournalError, match="no journal"):
        RunJournal.load(tmp_path, "cafebabe0000")
    with pytest.raises(JournalError, match="malformed"):
        journal_path(tmp_path, "../escape")
    assert not RunJournal.exists(tmp_path, "cafebabe0000")


def test_schema_mismatch_raises(tmp_path):
    spec = make_spec()
    RunJournal.create(tmp_path, spec, make_shards(spec), shard_size=4)
    path = journal_path(tmp_path, spec.run_id())
    header = json.loads(path.read_text().splitlines()[0])
    header["schema"] = 999
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(JournalError, match="schema"):
        RunJournal.load(tmp_path, spec.run_id())


def test_validate_plan_rejects_foreign_spec_and_plan(tmp_path):
    spec = make_spec()
    shards = make_shards(spec)
    RunJournal.create(tmp_path, spec, shards, shard_size=4)
    loaded = RunJournal.load(tmp_path, spec.run_id())
    loaded.validate_plan(spec, shards)  # the journaled plan passes

    with pytest.raises(JournalError, match="different spec"):
        loaded.validate_plan(make_spec(seed=9), shards)
    with pytest.raises(JournalError, match="shard plan"):
        loaded.validate_plan(spec, shards[:-1])
