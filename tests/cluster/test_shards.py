"""Sharding: deterministic, checkpoint-aligned, covering, round-trippable."""

import pytest

from repro.cluster.shards import DEFAULT_SHARD_SIZE, FaultShard, shard_faults
from repro.faults.campaign import schedule_by_checkpoint
from repro.testing import shared_fault_list, shared_loop_golden
from repro.uarch.structures import TargetStructure


@pytest.fixture(scope="module")
def golden():
    record = shared_loop_golden(iterations=40)
    record.ensure_checkpoints()
    return record


@pytest.fixture(scope="module")
def faults(golden):
    return shared_fault_list(golden, TargetStructure.RF, sample_size=120, seed=5)


def test_shards_cover_the_fault_list_exactly(golden, faults):
    shards = shard_faults("run0", faults, golden.checkpoints, shard_size=13)
    ids = [fid for shard in shards for fid in shard.fault_ids]
    assert sorted(ids) == sorted(f.fault_id for f in faults)
    assert len(ids) == len(set(ids)), "shards must be disjoint"
    assert all(len(shard) <= 13 for shard in shards)


def test_sharding_is_deterministic(golden, faults):
    first = shard_faults("run0", faults, golden.checkpoints, shard_size=13)
    second = shard_faults("run0", list(faults), golden.checkpoints, shard_size=13)
    assert [s.shard_id() for s in first] == [s.shard_id() for s in second]
    assert [s.faults for s in first] == [s.faults for s in second]


def test_shard_id_depends_on_campaign_and_payload(golden, faults):
    shards = shard_faults("run0", faults, golden.checkpoints, shard_size=13)
    other = shard_faults("run1", faults, golden.checkpoints, shard_size=13)
    assert all(a.shard_id() != b.shard_id() for a, b in zip(shards, other))


def test_shards_are_cycle_sorted_and_contiguous(golden, faults):
    shards = shard_faults("run0", faults, golden.checkpoints, shard_size=13)
    previous_last = None
    for shard in shards:
        cycles = [fault[3] for fault in shard.faults]
        assert cycles == sorted(cycles)
        if previous_last is not None:
            assert cycles[0] >= previous_last
        previous_last = cycles[-1]


def test_shard_boundaries_align_with_checkpoint_batches(golden, faults):
    """No shard may straddle a batch boundary while batches still fit."""
    batches = schedule_by_checkpoint(faults, golden.checkpoints)
    size = max(len(batch.faults) for batch in batches)
    shards = shard_faults("run0", faults, golden.checkpoints, shard_size=size)
    batch_of = {}
    for index, batch in enumerate(batches):
        for fault in batch.faults:
            batch_of[fault.fault_id] = index
    for shard in shards:
        spanned = {batch_of[fid] for fid in shard.fault_ids}
        # Contiguous run of whole batches: spans [min..max] with no holes
        # and no batch shared with another shard.
        assert spanned == set(range(min(spanned), max(spanned) + 1))
    owners = {}
    for shard in shards:
        for fid in shard.fault_ids:
            owner = owners.setdefault(batch_of[fid], shard.index)
            assert owner == shard.index, "batch split although it fits a shard"


def test_oversized_batches_split_contiguously(golden, faults):
    shards = shard_faults("run0", faults, golden.checkpoints, shard_size=1)
    assert all(len(shard) == 1 for shard in shards)
    assert len(shards) == len(faults)


def test_round_trip_and_fault_specs(golden, faults):
    shard = shard_faults("run0", faults, golden.checkpoints, shard_size=7)[0]
    clone = FaultShard.from_dict(shard.to_dict())
    assert clone == shard
    assert clone.shard_id() == shard.shard_id()
    rebuilt = clone.fault_specs()
    by_id = faults.by_id()
    assert all(by_id[fault.fault_id] == fault for fault in rebuilt)


def test_no_timeline_yields_one_cold_batch(faults):
    shards = shard_faults("run0", faults, None, shard_size=50)
    assert sum(len(shard) for shard in shards) == len(faults)


def test_empty_targets_and_bad_size(golden):
    assert shard_faults("run0", [], golden.checkpoints) == []
    with pytest.raises(ValueError, match=">= 1"):
        shard_faults("run0", [], golden.checkpoints, shard_size=0)


def test_default_shard_size_is_sane():
    assert 1 <= DEFAULT_SHARD_SIZE <= 10_000
