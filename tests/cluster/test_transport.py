"""Unit tests for the worker-transport seam: frames, local pool, fake.

The frame codec must fail closed on every malformed input (typed errors,
never a hang or a half-parsed frame), the local transport must preserve
the process-pool semantics the cluster engine always had, and the fake
transport's chaos schedule must be deterministic — it is the instrument
the chaos/differential suites calibrate against.
"""

from __future__ import annotations

import io

import pytest

from repro.cluster.transport import (
    MAX_FRAME_BYTES,
    ConnectionClosedError,
    FakeTransport,
    FrameBuffer,
    FrameTooLargeError,
    Heartbeat,
    HostDown,
    LocalPoolTransport,
    ProtocolError,
    ShardFailed,
    ShardResult,
    ShardTask,
    decode_frame,
    encode_frame,
    read_frame,
)


def task_of(task_id: str = "t1") -> ShardTask:
    return ShardTask(task_id=task_id, spec={}, shard={},
                     checkpoint_interval=None, obs_enabled=False,
                     warm_key="golden-key")


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    frame = {"kind": "result", "task_id": "a", "payload": {"x": [1, 2]}}
    encoded = encode_frame(frame)
    assert encoded.endswith(b"\n")
    assert decode_frame(encoded) == frame


def test_encode_rejects_oversized_frames():
    with pytest.raises(FrameTooLargeError):
        encode_frame({"kind": "result", "blob": "x" * 64}, max_bytes=32)


@pytest.mark.parametrize("line", [
    b"not json at all\n",
    b'{"truncated": \n',
    b'[1, 2, 3]\n',          # valid JSON, wrong shape
    b'{"no-kind": true}\n',  # object without a kind
    b'{"kind": 7}\n',        # kind is not a string
    b"\xff\xfe\n",           # not UTF-8
])
def test_decode_rejects_malformed_frames(line):
    with pytest.raises(ProtocolError):
        decode_frame(line)


def test_read_frame_clean_eof_returns_none():
    assert read_frame(io.BytesIO(b"")) is None


def test_read_frame_rejects_half_closed_stream():
    # EOF mid-line: the torn fragment must never parse as a frame.
    with pytest.raises(ConnectionClosedError):
        read_frame(io.BytesIO(b'{"kind": "result"'))


def test_read_frame_rejects_oversized_lines():
    data = b'{"kind": "x", "pad": "' + b"y" * 100 + b'"}\n'
    with pytest.raises(FrameTooLargeError):
        read_frame(io.BytesIO(data), max_bytes=50)


def test_frame_buffer_reassembles_split_frames():
    buffer = FrameBuffer()
    assert buffer.feed(b'{"kind": "heart') == []
    frames = buffer.feed(b'beat"}\n{"kind": "pong"}\n{"kind":')
    assert [frame["kind"] for frame in frames] == ["heartbeat", "pong"]
    assert buffer.feed(b' "bye"}\n') == [{"kind": "bye"}]
    buffer.close()  # nothing dangling


def test_frame_buffer_rejects_unbounded_fragments():
    buffer = FrameBuffer(max_bytes=64)
    with pytest.raises(FrameTooLargeError):
        buffer.feed(b"x" * 100)


def test_frame_buffer_close_rejects_dangling_fragment():
    buffer = FrameBuffer()
    buffer.feed(b'{"kind": "resu')
    with pytest.raises(ConnectionClosedError):
        buffer.close()


# ----------------------------------------------------------------------
# LocalPoolTransport
# ----------------------------------------------------------------------
def test_local_transport_runs_patched_worker(monkeypatch, tmp_path):
    # The engine's tests monkeypatch the worker entry point; dispatch
    # must resolve it late so the seam stays patchable.
    calls = {}

    def fake_worker(spec, shard, cache_dir, interval, obs_enabled=False):
        calls["args"] = (spec, shard, cache_dir, interval, obs_enabled)
        return {"shard_id": "s", "outcomes": {}}

    import repro.cluster.engine as engine_module

    class ImmediatePool:
        def submit(self, fn, *args):
            from concurrent.futures import Future

            future = Future()
            future.set_result(fn(*args))
            return future

        def shutdown(self, wait=True):
            pass

    transport = LocalPoolTransport(max_workers=2, cache_dir=str(tmp_path))
    monkeypatch.setattr(engine_module, "_run_shard_worker", fake_worker)
    hosts = transport.open()
    assert hosts == ["local/0", "local/1"]
    transport._pool.shutdown(wait=True)
    transport._pool = ImmediatePool()
    transport.dispatch(hosts[0], task_of())
    events = transport.poll(timeout=1.0)
    assert [type(event) for event in events] == [ShardResult]
    assert calls["args"][2] == str(tmp_path)
    transport.close()


def test_local_transport_failure_is_not_transient(tmp_path):
    class FailingPool:
        def submit(self, fn, *args):
            from concurrent.futures import Future

            future = Future()
            future.set_exception(RuntimeError("boom"))
            return future

        def shutdown(self, wait=True):
            pass

    transport = LocalPoolTransport(max_workers=1, cache_dir=str(tmp_path))
    hosts = transport.open()
    transport._pool.shutdown(wait=True)
    transport._pool = FailingPool()
    transport.dispatch(hosts[0], task_of())
    events = transport.poll(timeout=1.0)
    assert len(events) == 1
    failure = events[0]
    assert isinstance(failure, ShardFailed)
    assert not failure.transient
    assert "boom" in failure.error
    transport.close()


# ----------------------------------------------------------------------
# FakeTransport
# ----------------------------------------------------------------------
def synthetic(task: ShardTask) -> dict:
    return {"shard_id": task.task_id, "outcomes": {"1": ["Masked", 10],
                                                   "2": ["SDC", 11]}}


def test_fake_transport_rejects_unknown_actions_eagerly():
    with pytest.raises(ValueError, match="unknown fake-transport action"):
        FakeTransport(schedule=["explode"])
    with pytest.raises(ValueError, match="workers"):
        FakeTransport(workers=0)


def test_fake_transport_seeded_schedule_is_deterministic():
    first = FakeTransport.seeded_schedule(42, 30)
    again = FakeTransport.seeded_schedule(42, 30)
    other = FakeTransport.seeded_schedule(43, 30)
    assert first == again
    assert first != other
    assert any(action == "die" for action in first)


def test_fake_transport_die_emits_hostdown_and_loses_result():
    transport = FakeTransport(workers=2, schedule=["die"], executor=synthetic)
    hosts = transport.open()
    transport.dispatch(hosts[0], task_of("a"))
    events = transport.poll(0.0)
    assert events == [HostDown(hosts[0], "injected mid-shard death")]
    # The dead host refuses further dispatches.
    from repro.cluster.transport import HostLostError

    with pytest.raises(HostLostError):
        transport.dispatch(hosts[0], task_of("b"))


def test_fake_transport_protects_the_last_survivor():
    transport = FakeTransport(workers=1, schedule=["die"], executor=synthetic)
    hosts = transport.open()
    transport.dispatch(hosts[0], task_of("a"))
    events = transport.poll(0.0)
    # The lethal action was downgraded: the shard completes instead.
    assert [type(event) for event in events] == [ShardResult]


def test_fake_transport_total_loss_when_unprotected():
    transport = FakeTransport(workers=1, schedule=["die"],
                              executor=synthetic, protect_last_host=False)
    hosts = transport.open()
    transport.dispatch(hosts[0], task_of("a"))
    assert [type(event) for event in transport.poll(0.0)] == [HostDown]


def test_fake_transport_slow_heartbeats_then_delivers():
    transport = FakeTransport(workers=1, schedule=["slow:3"],
                              executor=synthetic)
    hosts = transport.open()
    transport.dispatch(hosts[0], task_of("a"))
    assert transport.poll(0.0) == [Heartbeat(hosts[0], "a")]
    assert transport.poll(0.0) == [Heartbeat(hosts[0], "a")]
    events = transport.poll(0.0)
    assert [type(event) for event in events] == [ShardResult]
    assert transport.clock() == pytest.approx(3.0)


def test_fake_transport_late_is_silent_then_delivers_and_retires():
    transport = FakeTransport(workers=2, schedule=["late:2"],
                              executor=synthetic)
    hosts = transport.open()
    transport.dispatch(hosts[0], task_of("a"))
    assert transport.poll(0.0) == []  # no heartbeat: looks dead
    events = transport.poll(0.0)
    assert [type(event) for event in events] == [ShardResult]
    from repro.cluster.transport import HostLostError

    with pytest.raises(HostLostError):  # zombie host is retired
        transport.dispatch(hosts[0], task_of("b"))


def test_fake_transport_torn_payload_loses_outcomes():
    transport = FakeTransport(workers=1, schedule=["torn"],
                              executor=synthetic)
    hosts = transport.open()
    transport.dispatch(hosts[0], task_of("a"))
    [event] = transport.poll(0.0)
    assert isinstance(event, ShardResult)
    assert len(event.payload["outcomes"]) < 2


def test_fake_transport_duplicate_delivers_twice():
    transport = FakeTransport(workers=1, schedule=["duplicate"],
                              executor=synthetic)
    hosts = transport.open()
    transport.dispatch(hosts[0], task_of("a"))
    events = transport.poll(0.0)
    assert [type(event) for event in events] == [ShardResult, ShardResult]
    assert events[0] == events[1]


def test_fake_transport_failure_flavours():
    transport = FakeTransport(workers=2, schedule=["fail", "fatal"],
                              executor=synthetic)
    hosts = transport.open()
    transport.dispatch(hosts[0], task_of("a"))
    transport.dispatch(hosts[1], task_of("b"))
    events = transport.poll(0.0)
    flavours = {event.task_id: event.transient for event in events}
    assert flavours == {"a": True, "b": False}


def test_fake_transport_records_warms():
    transport = FakeTransport(workers=1, executor=synthetic)
    hosts = transport.open()
    transport.warm(hosts[0], task_of("a"))
    assert transport.warms == [(hosts[0], "golden-key")]


def test_default_frame_cap_is_generous():
    # Shard payloads are a few KB; the cap is a guard against runaway
    # buffers, not a practical ceiling.
    assert MAX_FRAME_BYTES >= 1024 * 1024
