"""Agent wire-protocol tests: every violation fails closed, never hangs.

A raw socket client plays coordinator against a real
:class:`~repro.cluster.agent.AgentServer` thread: version-mismatched
handshakes, malformed frames, oversized frames, half-closed streams and
unknown kinds must each draw one typed ``error`` frame (when the agent
can still answer) followed by a dropped connection — and the agent must
never execute a frame it could not fully parse.  The final test runs a
real campaign through :class:`~repro.cluster.transport.TcpAgentTransport`
end to end and checks the fingerprint against the serial engine.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

import repro.cluster.transport as transport_module
from repro.api import CampaignSpec, SerialEngine
from repro.cluster.agent import AgentServer
from repro.cluster.remote import RemoteClusterEngine
from repro.cluster.transport import (
    PROTOCOL_VERSION,
    HandshakeError,
    TcpAgentTransport,
    decode_frame,
    encode_frame,
)
from repro.testing import small_config
from repro.uarch.structures import TargetStructure
from repro.version import __version__

HELLO = {"kind": "hello", "protocol": PROTOCOL_VERSION,
         "simulator": __version__}


@pytest.fixture
def agent(tmp_path):
    server = AgentServer(cache_dir=str(tmp_path / "agent-cache"),
                         heartbeat_interval=0.05, max_frame_bytes=4096)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    thread.join(timeout=5)
    assert not thread.is_alive(), "agent thread failed to stop"


class Client:
    """A raw line-JSON client with hard timeouts: a hang fails the test."""

    def __init__(self, server: AgentServer, timeout: float = 5.0):
        self.sock = socket.create_connection(server.address, timeout=timeout)
        self.reader = self.sock.makefile("rb")

    def send(self, frame: dict) -> None:
        self.sock.sendall(encode_frame(frame, max_bytes=1 << 20))

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def recv(self):
        line = self.reader.readline()
        return decode_frame(line) if line else None

    def half_close(self) -> None:
        self.sock.shutdown(socket.SHUT_WR)

    def close(self) -> None:
        self.reader.close()
        self.sock.close()


@pytest.fixture
def client(agent):
    connection = Client(agent)
    yield connection
    connection.close()


def shake(client: Client) -> None:
    client.send(HELLO)
    assert client.recv() == {"kind": "welcome", "protocol": PROTOCOL_VERSION,
                             "simulator": __version__}


def assert_refused(client: Client, error: str) -> None:
    frame = client.recv()
    assert frame is not None, "agent closed without the typed error frame"
    assert frame["kind"] == "error"
    assert frame["error"] == error
    assert client.recv() is None, "agent must drop the connection"


def test_handshake_and_ping(client):
    shake(client)
    client.send({"kind": "ping"})
    assert client.recv() == {"kind": "pong"}


def test_handshake_rejects_wrong_protocol(client):
    client.send({**HELLO, "protocol": PROTOCOL_VERSION + 1})
    assert_refused(client, "handshake-rejected")


def test_handshake_rejects_wrong_simulator(client):
    client.send({**HELLO, "simulator": "0.0.0"})
    assert_refused(client, "handshake-rejected")


def test_handshake_rejects_non_hello_opening(client):
    client.send({"kind": "shard", "task_id": "sneaky"})
    assert_refused(client, "handshake-rejected")


def test_malformed_frame_fails_closed(client):
    shake(client)
    client.send_raw(b"this is not json\n")
    assert_refused(client, "malformed-frame")


def test_oversized_frame_fails_closed(client):
    shake(client)
    # Over the agent's 4096-byte cap but under the client's own.
    client.send({"kind": "shard", "task_id": "big", "pad": "x" * 8192})
    assert_refused(client, "frame-too-large")


def test_half_closed_socket_fails_closed_without_hanging(client):
    shake(client)
    client.send_raw(b'{"kind": "shard", "task_id": "to')  # no newline
    client.half_close()
    assert_refused(client, "connection-torn")


def test_unknown_kind_fails_closed(client):
    shake(client)
    client.send({"kind": "reboot"})
    assert_refused(client, "unknown-kind")


def test_worker_exception_reports_failed_not_silence(client):
    # A shard frame whose spec cannot even be parsed: the agent answers a
    # typed non-transient failure instead of tearing the connection.
    shake(client)
    client.send({"kind": "shard", "task_id": "bad", "spec": {},
                 "shard": {}, "checkpoint_interval": None, "obs": False})
    frame = client.recv()
    while frame is not None and frame["kind"] == "heartbeat":
        frame = client.recv()
    assert frame["kind"] == "failed"
    assert frame["task_id"] == "bad"
    assert frame["transient"] is False


def test_agent_heartbeats_during_slow_work(agent):
    beats = []

    def slow(_frame):
        time.sleep(0.2)
        return {"kind": "result", "task_id": "slow", "payload": {}}

    agent._run_heartbeating({"task_id": "slow"}, beats.append, slow)
    kinds = [frame["kind"] for frame in beats]
    assert kinds[-1] == "result"
    assert kinds.count("heartbeat") >= 2, "slow work must keep the lease"


def test_coordinator_rejects_mismatched_agent(agent, monkeypatch):
    # An older coordinator (different wire protocol) must be refused at
    # open() with a typed HandshakeError — never half-join the pool.
    monkeypatch.setattr(transport_module, "PROTOCOL_VERSION",
                        PROTOCOL_VERSION + 1)
    transport = TcpAgentTransport([f"127.0.0.1:{agent.address[1]}"])
    with pytest.raises(HandshakeError, match="handshake-rejected"):
        transport.open()


def test_coordinator_rejects_mismatched_simulator(agent, monkeypatch):
    monkeypatch.setattr(transport_module, "__version__", "0.0.0")
    transport = TcpAgentTransport([f"127.0.0.1:{agent.address[1]}"])
    with pytest.raises(HandshakeError, match="handshake-rejected"):
        transport.open()


def test_remote_engine_over_real_sockets_matches_serial(agent, tmp_path):
    spec = CampaignSpec(
        workload="sha", structure=TargetStructure.RF, config=small_config(),
        scale=1, faults=12, seed=3, method="comprehensive",
    )
    reference = SerialEngine().run([spec])[0].classification_fingerprint()
    engine = RemoteClusterEngine(
        transport=TcpAgentTransport([f"127.0.0.1:{agent.address[1]}"]),
        shard_size=5, cache_dir=tmp_path / "coordinator-cache",
    )
    outcome = engine.run([spec])[0]
    assert outcome.classification_fingerprint() == reference
    assert engine.stats["host_warms"] == 1
    assert engine.stats["hosts_lost"] == 0
