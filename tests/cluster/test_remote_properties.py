"""Property suite for the remote coordinator's exactly-once guarantee.

Two invariants the differential tests spot-check, hypothesis sweeps:

1. Under *arbitrary* host-death/steal/duplicate/torn schedules, every
   shard task is delivered to the journal callback exactly once — never
   dropped, never twice — as long as one host survives.
2. The order shards merge in never affects the campaign's classification
   fingerprint: real per-shard payloads, merged under seeded
   permutations, always reduce to the same outcome.

``derandomize=True`` keeps both properties seeded and reproducible in CI.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.session import Session
from repro.api.spec import CampaignSpec
from repro.cluster.artifacts import ArtifactCache
from repro.cluster.engine import _execute_shard
from repro.cluster.merge import merge_shard_outcomes
from repro.cluster.remote import Coordinator, validate_shard_payload
from repro.cluster.shards import FaultShard, shard_faults
from repro.cluster.transport import FakeTransport, ShardTask
from repro.testing import small_config
from repro.uarch.structures import TargetStructure, structure_geometry

#: The full chaos vocabulary except ``fatal`` (which aborts by contract).
ACTIONS = ["run", "run", "slow:2", "slow:5", "late:4", "late:8",
           "die", "torn", "duplicate", "fail"]


def synthetic_executor(task: ShardTask) -> dict:
    shard = FaultShard.from_dict(task.shard)
    return {
        "shard_id": shard.shard_id(),
        "golden_cache_hit": True,
        "outcomes": {str(fault_id): ["Masked", 100 + fault_id]
                     for fault_id in shard.fault_ids},
    }


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    count=st.integers(min_value=1, max_value=10),
    workers=st.integers(min_value=1, max_value=4),
    schedule=st.lists(st.sampled_from(ACTIONS), max_size=16),
)
def test_every_shard_delivered_exactly_once_under_chaos(
        count, workers, schedule):
    tasks, lookup = [], {}
    for index in range(count):
        shard = FaultShard("runP", index, "RF", ((index, 0, 0, 5),))
        task = ShardTask(task_id=f"0:{shard.shard_id()}", spec={},
                         shard=shard.to_dict(), checkpoint_interval=None,
                         obs_enabled=False, warm_key="g")
        tasks.append(task)
        lookup[task.task_id] = shard
    transport = FakeTransport(workers=workers, schedule=schedule,
                              executor=synthetic_executor)
    coordinator = Coordinator(
        transport, lease_timeout=3.0, poll_interval=0.0,
        max_attempts=100, sleep=lambda _seconds: None,
    )
    journal: list = []
    coordinator.run(
        tasks,
        lambda task, payload: journal.append(task.task_id),
        validate=lambda task, payload: validate_shard_payload(
            lookup[task.task_id], payload),
    )
    assert sorted(journal) == sorted(task.task_id for task in tasks), (
        "every task must reach the journal exactly once")
    assert coordinator.stats["completed"] == count


@pytest.fixture(scope="module")
def merge_world(tmp_path_factory):
    """Real per-shard payloads for one campaign, computed once."""
    cache_dir = str(tmp_path_factory.mktemp("property-cache"))
    spec = CampaignSpec(
        workload="sha", structure=TargetStructure.RF, config=small_config(),
        scale=1, faults=30, seed=9, method="comprehensive",
    )
    session = Session(checkpointing=True,
                      artifact_cache=ArtifactCache(cache_dir))
    golden = session.golden(spec)
    fault_list = session.fault_list(spec)
    shards = shard_faults(spec.run_id(), list(fault_list),
                          golden.checkpoints, 7)
    payloads = [_execute_shard(spec, shard, cache_dir, None)
                for shard in shards]
    return spec, golden, fault_list, payloads


def merged_fingerprint(merge_world, order) -> str:
    spec, golden, fault_list, payloads = merge_world
    outcomes: dict = {}
    for position in order:
        for fault_id, (effect, cycles) in payloads[position]["outcomes"].items():
            outcomes[int(fault_id)] = (effect, cycles)
    outcome = merge_shard_outcomes(
        spec, golden,
        structure_geometry(spec.structure, spec.config),
        fault_list, None, outcomes, wall_clock_seconds=0.0,
    )
    return outcome.classification_fingerprint()


@settings(max_examples=25, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_merge_order_never_affects_fingerprint(merge_world, seed):
    reference = merged_fingerprint(
        merge_world, range(len(merge_world[3])))
    order = list(range(len(merge_world[3])))
    random.Random(seed).shuffle(order)
    assert merged_fingerprint(merge_world, order) == reference
