"""Session façade: state sharing, equivalence with the hand-wired path,
result persistence and progress reporting."""

import pytest

from repro.api import CampaignSpec, ResultStore, Session
from repro.api import session as session_module
from repro.core.merlin import MerlinCampaign, MerlinConfig
from repro.faults.campaign import CampaignResult, ComprehensiveCampaign
from repro.faults.golden import capture_golden
from repro.faults.model import FaultList
from repro.faults.sampling import generate_fault_list
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure, structure_geometry
from repro.workloads import build_program

CONFIG = MicroarchConfig().with_register_file(64)


def tiny_spec(**overrides):
    fields = dict(
        workload="sha",
        structure=TargetStructure.RF,
        config=CONFIG,
        scale=1,
        faults=60,
        seed=0,
        method="merlin",
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


@pytest.fixture(scope="module")
def session():
    return Session()


def test_golden_and_fault_list_shared_across_methods(session):
    merlin_spec = tiny_spec(method="merlin")
    comprehensive_spec = tiny_spec(method="comprehensive")
    assert session.golden(merlin_spec) is session.golden(comprehensive_spec)
    assert session.fault_list(merlin_spec) is session.fault_list(comprehensive_spec)
    # A different structure shares the golden run but not the fault list.
    sq_spec = tiny_spec(structure=TargetStructure.SQ)
    assert session.golden(sq_spec) is session.golden(merlin_spec)
    assert session.fault_list(sq_spec) is not session.fault_list(merlin_spec)


def test_session_matches_hand_wired_campaign(session):
    """Same seeds => same AVF as the pre-façade MerlinCampaign wiring."""
    spec = tiny_spec()
    outcome = session.run(spec)

    program = build_program("sha", scale=1)
    golden = capture_golden(program, CONFIG)
    geometry = structure_geometry(TargetStructure.RF, CONFIG)
    fault_list = generate_fault_list(geometry, golden.cycles, sample_size=60, seed=0)
    campaign = MerlinCampaign(
        program, CONFIG,
        MerlinConfig(structure=TargetStructure.RF, initial_faults=60, seed=0),
        golden=golden,
    )
    campaign.use_fault_list(fault_list)
    reference = campaign.run()

    assert outcome.merlin.avf == reference.avf
    assert outcome.merlin.injections == reference.injections_performed
    assert outcome.merlin.counts == dict(reference.counts_final.counts)
    assert outcome.golden_cycles == reference.golden_cycles


def test_method_both_shares_representative_injections(session):
    execution = session.execute(tiny_spec(method="both"))
    assert execution.merlin is not None
    assert execution.comprehensive is not None
    # Every fault of the shared list was classified by the baseline.
    assert execution.comprehensive.injections_performed == 60
    # MeRLiN's predictions cover the same fault ids.
    assert set(execution.merlin.predicted_outcomes) == set(
        execution.comprehensive.outcomes
    )


def test_outcome_json_round_trip(session):
    outcome = session.run(tiny_spec(method="both"))
    from repro.api import CampaignOutcome

    restored = CampaignOutcome.from_dict(outcome.to_dict())
    assert restored.to_dict() == outcome.to_dict()
    assert restored.run_id == outcome.run_id


def test_store_persists_and_reloads_without_resimulating(tmp_path, monkeypatch):
    store = ResultStore(tmp_path / "artifacts")
    spec = tiny_spec()
    first = Session(store=store).run(spec)
    assert store.has(spec.run_id())

    # A fresh session must serve the artifact without touching the simulator.
    def forbidden(*args, **kwargs):
        raise AssertionError("stored outcome should not be re-simulated")

    monkeypatch.setattr(session_module, "capture_golden", forbidden)
    second = Session(store=store).run(spec)
    assert second.to_dict() == first.to_dict()

    # refresh=True forces the re-run (and therefore hits the simulator).
    with pytest.raises(AssertionError):
        Session(store=store).run(spec, refresh=True)


def test_progress_reported_by_both_campaign_kinds(session):
    events = []
    session.execute(
        tiny_spec(method="both", seed=1),
        progress=lambda done, total: events.append((done, total)),
    )
    assert events, "expected per-injection progress callbacks"
    # Callbacks are (done, total) with done counting up to total per campaign.
    assert all(1 <= done <= total for done, total in events)
    totals = {total for _, total in events}
    assert len(totals) >= 2, "merlin and comprehensive should both report"


def test_merlin_campaign_progress_parity():
    """MerlinCampaign.run accepts the same progress hook as the baseline."""
    program = build_program("sha", scale=1)
    golden = capture_golden(program, CONFIG)
    geometry = structure_geometry(TargetStructure.RF, CONFIG)
    fault_list = generate_fault_list(geometry, golden.cycles, sample_size=40, seed=2)
    campaign = MerlinCampaign(
        program, CONFIG,
        MerlinConfig(structure=TargetStructure.RF, initial_faults=40, seed=2),
        golden=golden,
    )
    campaign.use_fault_list(fault_list)
    events = []
    result = campaign.run(progress=lambda done, total: events.append((done, total)))
    assert [done for done, _ in events] == list(range(1, result.injections_performed + 1))
    assert all(total == result.injections_performed for _, total in events)


def test_empty_fault_list_yields_zero_avf():
    program = build_program("sha", scale=1)
    golden = capture_golden(program, CONFIG)
    campaign = ComprehensiveCampaign(golden, FaultList(TargetStructure.RF))
    result = campaign.run()
    assert result.injections_performed == 0
    assert result.avf == 0.0


def test_comprehensive_run_accepts_fault_list_without_copy(session):
    spec = tiny_spec(method="comprehensive", seed=4)
    prepared = session.prepare(spec)
    campaign = prepared.comprehensive_campaign()
    result = campaign.run(prepared.fault_list)
    assert isinstance(result, CampaignResult)
    assert result.injections_performed == len(prepared.fault_list)


def build_custom_program(name="custom_loop"):
    from repro.isa.builder import ProgramBuilder
    from repro.isa.registers import Reg as R

    b = ProgramBuilder(name)
    source = b.alloc_words("source", [(i * 7 + 3) % 101 for i in range(20)])
    b.movi(R.RDI, source)
    b.movi(R.RAX, 0)
    b.movi(R.RCX, 0)
    b.label("loop")
    b.load(R.RDX, R.RDI, 0)
    b.add(R.RAX, R.RAX, R.RDX)
    b.add(R.RDI, R.RDI, 8)
    b.add(R.RCX, R.RCX, 1)
    b.blt(R.RCX, 20, "loop")
    b.out(R.RAX)
    b.halt()
    return b.build()


def test_custom_program_registration():
    session = Session()
    program = build_custom_program()
    session.register_program(program)
    spec = CampaignSpec(workload=program.name, structure=TargetStructure.RF,
                        config=CONFIG, faults=30, seed=5)
    outcome = session.run(spec)
    assert outcome.merlin is not None
    with pytest.raises(ValueError):
        session.program(program.name, scale=2)


def test_register_program_rejects_bundled_names():
    session = Session()
    with pytest.raises(ValueError):
        session.register_program(build_custom_program(name="sha"))
