"""Execution engines: serial/process equivalence and progress reporting."""

import pytest

from repro.api import (
    CampaignSpec,
    CheckpointEngine,
    ProcessPoolEngine,
    ResultStore,
    SerialEngine,
    config_axis,
    make_engine,
    sweep,
)
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure


def tiny_sweep():
    return sweep(
        ["sha", "qsort"],
        structures=("RF",),
        configs=config_axis(registers=(64,)),
        faults=40,
        scale=1,
        seed=0,
    )


def test_sweep_expands_cross_product():
    specs = sweep(
        ["sha", "qsort"],
        structures=("RF", "SQ"),
        configs=config_axis(registers=(128, 64)),
        faults=40,
    )
    assert len(specs) == 2 * 2 * 2
    assert len({spec.run_id() for spec in specs}) == len(specs)
    # Workload-major ordering keeps each workload's campaigns adjacent.
    assert [spec.workload for spec in specs[:4]] == ["sha"] * 4


def test_sweep_rejects_unknown_structure():
    with pytest.raises(ValueError):
        sweep(["sha"], structures=("ROB",))


def test_config_axis_combinations():
    assert config_axis() == [MicroarchConfig()]
    axis = config_axis(registers=(128, 64), sq_entries=(16,))
    assert len(axis) == 2
    assert {config.num_phys_int_regs for config in axis} == {128, 64}
    assert all(config.store_queue_entries == 16 for config in axis)


def test_serial_engine_runs_in_order_with_progress():
    specs = tiny_sweep()
    events = []
    outcomes = SerialEngine().run(
        specs, progress=lambda done, total: events.append((done, total))
    )
    assert [outcome.spec for outcome in outcomes] == specs
    assert events == [(1, 2), (2, 2)]


def test_process_engine_matches_serial_bit_for_bit(tmp_path):
    specs = tiny_sweep()
    serial = SerialEngine().run(specs)
    process = ProcessPoolEngine(max_workers=2).run(
        specs, store=ResultStore(tmp_path / "store")
    )
    assert len(process) == len(serial)
    for left, right in zip(serial, process):
        assert left.classification_fingerprint() == right.classification_fingerprint()


def test_process_engine_persists_to_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    specs = tiny_sweep()
    events = []
    ProcessPoolEngine(max_workers=1).run(
        specs, store=store, progress=lambda done, total: events.append((done, total))
    )
    assert sorted(store.run_ids()) == sorted(spec.run_id() for spec in specs)
    assert events[-1] == (2, 2)


def test_process_engine_empty_batch():
    assert ProcessPoolEngine().run([]) == []


def test_serial_engine_honors_store_with_injected_session(tmp_path):
    from repro.api import Session

    session = Session()
    store = ResultStore(tmp_path / "store")
    specs = tiny_sweep()[:1]
    SerialEngine(session).run(specs, store=store)
    assert store.run_ids() == [specs[0].run_id()]
    # The injected session's own (absent) store is restored afterwards.
    assert session.store is None


def test_make_engine():
    assert isinstance(make_engine("serial"), SerialEngine)
    assert isinstance(make_engine("process", max_workers=3), ProcessPoolEngine)
    checkpoint = make_engine("checkpoint", checkpoint_interval=50)
    assert isinstance(checkpoint, CheckpointEngine)
    assert checkpoint.checkpoint_interval == 50
    with pytest.raises(ValueError):
        make_engine("distributed")
    # A checkpoint interval with a non-checkpoint engine is a user error,
    # not something to accept and silently discard — as is a nonsensical
    # interval value.
    with pytest.raises(ValueError, match="checkpoint_interval"):
        make_engine("serial", checkpoint_interval=50)
    with pytest.raises(ValueError, match=">= 1"):
        make_engine("checkpoint", checkpoint_interval=0)


def test_process_engine_worker_failure_surfaces_and_does_not_hang():
    """A worker raising mid-campaign must raise in the parent, promptly.

    The spec passes validation but names a workload no worker can resolve,
    so the failure happens inside the worker process itself.
    """
    bad = CampaignSpec(workload="no-such-workload", faults=10)
    specs = tiny_sweep()[:1] + [bad] + tiny_sweep()[1:]
    with pytest.raises(RuntimeError, match="failed in a worker"):
        ProcessPoolEngine(max_workers=2).run(specs)


def test_process_engine_failure_chains_the_worker_exception():
    bad = CampaignSpec(workload="no-such-workload", faults=10)
    try:
        ProcessPoolEngine(max_workers=1).run([bad])
    except RuntimeError as failure:
        assert failure.__cause__ is not None
        assert bad.run_id() in str(failure)
    else:
        pytest.fail("worker failure was silently dropped")


def test_checkpoint_engine_matches_serial_bit_for_bit(tmp_path):
    specs = tiny_sweep()
    serial = SerialEngine().run(specs)
    checkpoint = CheckpointEngine().run(
        specs, store=ResultStore(tmp_path / "store")
    )
    assert len(checkpoint) == len(serial)
    for left, right in zip(serial, checkpoint):
        assert left.classification_fingerprint() == right.classification_fingerprint()


def test_checkpoint_engine_configures_injected_session_for_the_run_only():
    from repro.api import Session

    session = Session()
    engine = CheckpointEngine(session, checkpoint_interval=64)
    engine.run(tiny_sweep()[:1])
    # The run itself used checkpointing...
    golden = next(iter(session._goldens.values()))
    assert golden.checkpoints is not None and len(golden.checkpoints) > 0
    # ...but the shared session is handed back unchanged, so a later
    # SerialEngine batch through it stays on the cold-start path.
    assert not session.checkpointing
    assert session.checkpoint_interval is None


def test_store_listing_and_delete(tmp_path):
    store = ResultStore(tmp_path / "store")
    specs = tiny_sweep()[:1]
    outcomes = SerialEngine().run(specs, store=store)
    run_id = outcomes[0].run_id
    assert store.run_ids() == [run_id]
    assert len(store) == 1
    loaded = list(store)[0]
    assert loaded.to_dict() == outcomes[0].to_dict()
    assert store.delete(run_id)
    assert not store.delete(run_id)
    assert store.get(run_id) is None
    with pytest.raises(ValueError):
        store.has("../escape")
