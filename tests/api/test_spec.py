"""CampaignSpec identity, validation and serialization."""

import pytest

from repro.api import CampaignSpec, config_from_dict, config_to_dict
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure


def make_spec(**overrides):
    fields = dict(
        workload="sha",
        structure=TargetStructure.RF,
        config=MicroarchConfig().with_register_file(64),
        scale=1,
        faults=60,
        seed=3,
        method="merlin",
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def test_run_id_is_stable_across_instances():
    assert make_spec().run_id() == make_spec().run_id()


def test_run_id_is_short_hex():
    run_id = make_spec().run_id()
    assert len(run_id) == 12
    int(run_id, 16)  # raises if not hex


@pytest.mark.parametrize("change", [
    {"workload": "qsort"},
    {"structure": TargetStructure.SQ},
    {"config": MicroarchConfig().with_register_file(128)},
    {"scale": 2},
    {"faults": 61},
    {"seed": 4},
    {"method": "both"},
    {"error_margin": 0.01},
    {"confidence": 0.95},
    {"fault_model": "multi-bit", "model_params": (("width", 2),)},
    {"fault_model": "stuck-at-1"},
])
def test_run_id_changes_with_every_field(change):
    assert make_spec().run_id() != make_spec(**change).run_id()


def test_model_params_change_run_id_and_fault_list_key():
    two = make_spec(fault_model="multi-bit", model_params={"width": 2})
    four = make_spec(fault_model="multi-bit", model_params={"width": 4})
    assert two.run_id() != four.run_id()
    assert two.fault_list_key() != four.fault_list_key()
    assert make_spec().fault_list_key() != two.fault_list_key()


def test_model_params_dict_is_canonicalised():
    """A dict and the equivalent sorted tuple name the same campaign."""
    from_dict = make_spec(fault_model="intermittent",
                          model_params={"period": 2, "count": 3})
    from_tuple = make_spec(fault_model="intermittent",
                           model_params=(("count", 3), ("period", 2)))
    assert from_dict.model_params == (("count", 3), ("period", 2))
    assert from_dict.run_id() == from_tuple.run_id()


def test_fault_model_round_trips_through_dict():
    spec = make_spec(fault_model="multi-bit", model_params={"width": 4})
    restored = CampaignSpec.from_dict(spec.to_dict())
    assert restored == spec
    assert restored.run_id() == spec.run_id()
    assert restored.fault_model_instance().describe() == "multi-bit(width=4)"
    assert "multi-bit" in spec.describe()


def test_default_model_is_omitted_from_canonical_form():
    """Single-bit specs keep their pre-generalization canonical JSON."""
    payload = make_spec().to_dict()
    assert "fault_model" not in payload
    assert "model_params" not in payload


def test_spec_rejects_bad_fault_model():
    with pytest.raises(ValueError, match="unknown fault model"):
        make_spec(fault_model="bitrot")
    with pytest.raises(ValueError):
        make_spec(fault_model="multi-bit", model_params={"width": 99})


def test_model_param_values_are_coerced_to_int():
    """Hand-edited spec JSON with string values canonicalises identically."""
    spec = CampaignSpec.from_dict({
        "workload": "sha", "fault_model": "multi-bit",
        "model_params": [["width", "4"]],
    })
    assert spec.model_params == (("width", 4),)
    # The natural JSON-object form is accepted too.
    as_dict = CampaignSpec.from_dict({
        "workload": "sha", "fault_model": "multi-bit",
        "model_params": {"width": 4},
    })
    assert as_dict == spec and as_dict.run_id() == spec.run_id()
    assert spec.run_id() == make_spec(
        workload="sha", structure=TargetStructure.RF,
        config=MicroarchConfig(), scale=None, faults=None, seed=0,
        fault_model="multi-bit", model_params={"width": 4},
    ).run_id()
    with pytest.raises(ValueError, match="must be integers"):
        make_spec(fault_model="stuck-at-0", model_params={"duration": "soon"})
    # A fractional float must be rejected, never silently truncated.
    with pytest.raises(ValueError, match="must be integers"):
        make_spec(fault_model="multi-bit", model_params={"width": 2.9})
    # An integer-valued float is value-preserving and therefore accepted.
    assert make_spec(fault_model="multi-bit",
                     model_params={"width": 2.0}).model_params == (("width", 2),)


def test_dict_round_trip_preserves_spec_and_identity():
    spec = make_spec(method="both")
    restored = CampaignSpec.from_dict(spec.to_dict())
    assert restored == spec
    assert restored.run_id() == spec.run_id()


def test_from_dict_tolerates_missing_optionals():
    spec = CampaignSpec.from_dict({"workload": "sha"})
    assert spec.structure is TargetStructure.RF
    assert spec.config == MicroarchConfig()
    assert spec.method == "merlin"


def test_config_round_trip():
    config = MicroarchConfig().with_store_queue(16).with_l1d(16)
    assert config_from_dict(config_to_dict(config)) == config


def test_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        make_spec(method="exhaustive")
    with pytest.raises(ValueError):
        make_spec(faults=0)
    with pytest.raises(ValueError):
        make_spec(workload="")
    with pytest.raises(ValueError):
        make_spec(error_margin=1.5)
    with pytest.raises(ValueError):
        CampaignSpec.from_dict({"workload": "sha", "structure": "ROB"})


def test_golden_key_ignores_structure_and_budget():
    rf = make_spec(structure=TargetStructure.RF, faults=60)
    sq = make_spec(structure=TargetStructure.SQ, faults=90)
    assert rf.golden_key() == sq.golden_key()
    assert rf.fault_list_key() != sq.fault_list_key()


def test_fault_list_key_ignores_method():
    merlin = make_spec(method="merlin")
    both = make_spec(method="both")
    assert merlin.fault_list_key() == both.fault_list_key()
    assert merlin.run_id() != both.run_id()


def test_replace_returns_updated_copy():
    spec = make_spec()
    other = spec.replace(seed=99)
    assert other.seed == 99
    assert spec.seed == 3
