"""ResultStore edge cases: typed errors, concurrent writers, stale temps."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api import CampaignOutcome, CampaignSpec, ResultStore, StoreError
from repro.uarch.structures import TargetStructure


def outcome_for(seed: int = 0) -> CampaignOutcome:
    spec = CampaignSpec(workload="sha", structure=TargetStructure.RF,
                        faults=10, scale=1, seed=seed)
    return CampaignOutcome(
        spec=spec, golden_cycles=100, committed_instructions=50, total_bits=4096,
    )


def test_load_missing_raises_typed_store_error(tmp_path):
    store = ResultStore(tmp_path)
    with pytest.raises(StoreError) as failure:
        store.load("cafebabe0000")
    assert failure.value.run_id == "cafebabe0000"
    assert "no such stored outcome" in str(failure.value)
    # get() still maps a plain miss to None.
    assert store.get("cafebabe0000") is None


def test_load_corrupt_json_raises_store_error(tmp_path):
    store = ResultStore(tmp_path)
    (tmp_path / "deadbeef.json").write_text("{broken")
    with pytest.raises(StoreError, match="not valid JSON"):
        store.load("deadbeef")
    with pytest.raises(StoreError):
        store.get("deadbeef")


def test_load_foreign_payload_raises_store_error(tmp_path):
    store = ResultStore(tmp_path)
    (tmp_path / "feedface.json").write_text(json.dumps({"spec": {}}))
    with pytest.raises(StoreError, match="not a campaign outcome"):
        store.load("feedface")


def _saver(args):
    """Process worker: hammer the same run id with repeated saves."""
    root, seed, repeats = args
    store = ResultStore(root)
    outcome = outcome_for(seed)
    for _ in range(repeats):
        store.save(outcome)
    return outcome.run_id


def test_concurrent_saves_of_same_run_id_never_tear(tmp_path):
    """Two processes racing save() on one run id: last rename wins, the
    artifact is always complete JSON, and no temp files leak."""
    args = [(str(tmp_path), 0, 25), (str(tmp_path), 0, 25)]
    with ProcessPoolExecutor(max_workers=2) as pool:
        run_ids = list(pool.map(_saver, args))
    assert run_ids[0] == run_ids[1]
    loaded = ResultStore(tmp_path).load(run_ids[0])
    assert loaded.to_dict() == outcome_for(0).to_dict()
    assert list(tmp_path.glob(".tmp-*")) == []


def test_stale_tmp_files_ignored_and_collected(tmp_path):
    store = ResultStore(tmp_path)
    store.save(outcome_for(1))
    (tmp_path / ".tmp-abcd.json").write_text("half-written")
    (tmp_path / ".tmp-efgh.json").write_text("")
    assert store.run_ids() == [outcome_for(1).run_id]

    # Fresh temp files may belong to a live writer: default gc spares them.
    assert store.gc() == 0
    removed = store.gc(max_age_seconds=0)
    assert removed == 2
    assert list(tmp_path.glob(".tmp-*")) == []
    # Real artifacts survive collection.
    assert store.run_ids() == [outcome_for(1).run_id]
    assert store.gc(max_age_seconds=0) == 0


def test_gc_never_collects_future_dated_temp_files(tmp_path):
    """A clock step (or foreign-clock NFS server) can leave a temp file
    with an mtime in the future.  Its age is negative, not huge: gc must
    treat it as fresh, never as infinitely stale."""
    import os
    import time

    store = ResultStore(tmp_path)
    future = tmp_path / ".tmp-future.json"
    future.write_text("half-written")
    later = time.time() + 3600.0
    os.utime(future, (later, later))

    # Stale-only sweeps and full sweeps alike must spare it: a negative
    # age is never "older than max_age_seconds".
    assert store.gc() == 0
    assert store.gc(max_age_seconds=0) == 0
    assert future.exists()

    # A genuinely old file on the same filesystem is still collected.
    stale = tmp_path / ".tmp-stale.json"
    stale.write_text("half-written")
    earlier = time.time() - 7200.0
    os.utime(stale, (earlier, earlier))
    assert store.gc() == 1
    assert not stale.exists()
    assert future.exists()
