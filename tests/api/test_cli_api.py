"""CLI smoke tests for the façade-backed subcommands (run/sweep/report)."""

import json
import subprocess
import sys

import pytest

from repro import cli
from repro.api import CampaignSpec, Session
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure


def run_cli(capsys, argv):
    code = cli.main(argv)
    out = capsys.readouterr().out
    return code, out


def test_run_json_matches_python_api(capsys):
    code, out = run_cli(capsys, [
        "run", "--workload", "sha", "--structure", "RF",
        "--registers", "64", "--faults", "60", "--scale", "1", "--json",
    ])
    assert code == 0
    payload = json.loads(out)
    spec = CampaignSpec(
        workload="sha", structure=TargetStructure.RF,
        config=MicroarchConfig().with_register_file(64),
        scale=1, faults=60,
    )
    assert payload["run_id"] == spec.run_id()
    outcome = Session().run(spec)
    assert payload["merlin"]["avf"] == outcome.merlin.avf
    assert payload["merlin"]["counts"] == outcome.merlin.counts


def test_run_with_checkpoint_engine_matches_serial(capsys):
    argv = [
        "run", "--workload", "sha", "--structure", "RF",
        "--registers", "64", "--faults", "60", "--scale", "1", "--json",
    ]
    code, serial_out = run_cli(capsys, argv)
    assert code == 0
    code, checkpoint_out = run_cli(
        capsys, argv + ["--engine", "checkpoint", "--checkpoint-interval", "64"]
    )
    assert code == 0
    serial_payload = json.loads(serial_out)
    checkpoint_payload = json.loads(checkpoint_out)
    assert checkpoint_payload["run_id"] == serial_payload["run_id"]
    assert checkpoint_payload["merlin"]["counts"] == serial_payload["merlin"]["counts"]
    assert checkpoint_payload["merlin"]["avf"] == serial_payload["merlin"]["avf"]


def test_run_method_comprehensive(capsys):
    code, out = run_cli(capsys, [
        "run", "--workload", "sha", "--faults", "30", "--scale", "1",
        "--method", "comprehensive",
    ])
    assert code == 0
    assert "baseline: 30 injections" in out
    assert "Masked" in out


def test_sweep_json_and_store_report(tmp_path, capsys):
    store_dir = str(tmp_path / "results")
    code, out = run_cli(capsys, [
        "sweep", "--workloads", "sha,qsort", "--structures", "RF",
        "--faults", "40", "--scale", "1", "--store", store_dir, "--json",
    ])
    assert code == 0
    payload = json.loads(out)
    assert len(payload) == 2
    assert {entry["spec"]["workload"] for entry in payload} == {"sha", "qsort"}

    code, out = run_cli(capsys, ["report", "--store", store_dir, "--json"])
    assert code == 0
    report = json.loads(out)
    assert {entry["run_id"] for entry in report} == {
        entry["run_id"] for entry in payload
    }

    run_id = report[0]["run_id"]
    code, out = run_cli(capsys, [
        "report", "--store", store_dir, "--run-id", run_id, "--json",
    ])
    assert code == 0
    assert json.loads(out)["run_id"] == run_id


def test_sweep_text_table(tmp_path, capsys):
    code, out = run_cli(capsys, [
        "sweep", "--workloads", "sha", "--structures", "RF",
        "--faults", "40", "--scale", "1",
    ])
    assert code == 0
    assert "run_id" in out and "sha" in out


def test_report_missing_run_id_fails(tmp_path, capsys):
    store_dir = tmp_path / "empty"
    store_dir.mkdir()
    code = cli.main([
        "report", "--store", str(store_dir), "--run-id", "deadbeef0000",
    ])
    assert code == 1


def test_report_nonexistent_store_errors(tmp_path):
    missing = tmp_path / "typo"
    with pytest.raises(SystemExit):
        cli.main(["report", "--store", str(missing)])
    assert not missing.exists()


def test_cli_converts_validation_errors(capsys):
    with pytest.raises(SystemExit):
        cli.main(["run", "--workload", "sha", "--faults", "0", "--scale", "1"])
    err = capsys.readouterr().err
    assert "repro: error:" in err


def test_sweep_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        cli.main(["sweep", "--workloads", "doom", "--faults", "10"])


def test_list_json(capsys):
    code, out = run_cli(capsys, ["list", "--json"])
    assert code == 0
    names = [entry["name"] for entry in json.loads(out)]
    assert "sha" in names and "astar" in names
    assert len(names) == 20


def test_python_dash_m_repro_entry_point():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True, text=True, check=False,
    )
    assert result.returncode == 0
    assert "sha" in result.stdout


def test_run_reuses_store(tmp_path, capsys):
    store_dir = str(tmp_path / "cache")
    argv = ["run", "--workload", "sha", "--faults", "30", "--scale", "1",
            "--store", store_dir, "--json"]
    _, first = run_cli(capsys, argv)
    _, second = run_cli(capsys, argv)
    assert json.loads(first) == json.loads(second)
