"""Tests for the SimPoint-style interval selector."""

import pytest

from repro.faults.golden import capture_golden
from repro.uarch.config import MicroarchConfig
from repro.workloads import get_workload
from repro.workloads.simpoint import basic_block_vectors, select_simpoint

from tests.conftest import build_loop_program


@pytest.fixture(scope="module")
def traced_run():
    program = build_loop_program(iterations=60)
    golden = capture_golden(program, MicroarchConfig())
    rips = [rip for rip, _ in golden.commit_log]
    return program, rips


def test_basic_block_vectors_shape_and_normalisation(traced_run):
    program, rips = traced_run
    vectors, starts = basic_block_vectors(program, rips, interval_length=50)
    assert vectors.shape[0] == len(starts)
    assert vectors.shape[0] == (len(rips) + 49) // 50
    for row in vectors:
        assert abs(row.sum() - 1.0) < 1e-9


def test_basic_block_vectors_validation(traced_run):
    program, rips = traced_run
    with pytest.raises(ValueError):
        basic_block_vectors(program, rips, interval_length=0)
    with pytest.raises(ValueError):
        basic_block_vectors(program, [], interval_length=10)


def test_select_simpoint_returns_valid_interval(traced_run):
    program, rips = traced_run
    simpoint = select_simpoint(program, rips, interval_length=40, max_clusters=3, seed=1)
    assert 0 <= simpoint.start_instruction < len(rips)
    assert simpoint.end_instruction <= len(rips) + 40
    assert 0 < simpoint.weight <= 1.0
    assert simpoint.cluster_size <= simpoint.num_intervals


def test_select_simpoint_is_deterministic(traced_run):
    program, rips = traced_run
    a = select_simpoint(program, rips, interval_length=40, seed=7)
    b = select_simpoint(program, rips, interval_length=40, seed=7)
    assert a == b


def test_select_simpoint_on_spec_workload():
    program = get_workload("gcc").build_for_test()
    golden = capture_golden(program, MicroarchConfig())
    rips = [rip for rip, _ in golden.commit_log]
    simpoint = select_simpoint(program, rips, interval_length=100)
    assert simpoint.weight >= 1.0 / simpoint.num_intervals
