"""Tests for the workload registry, generators and the kernels themselves."""

import pytest

from repro.isa.functional import run_functional
from repro.workloads import (
    MIBENCH_NAMES,
    SPEC_NAMES,
    all_names,
    build_program,
    get_workload,
)
from repro.workloads.generators import (
    DeterministicStream,
    byte_array,
    image_matrix,
    sorted_ramp,
    text_bytes,
    word_array,
)

ALL_NAMES = list(MIBENCH_NAMES) + list(SPEC_NAMES)


def test_registry_has_the_papers_benchmarks():
    assert set(MIBENCH_NAMES) == {
        "susan_c", "susan_s", "susan_e", "stringsearch", "djpeg",
        "sha", "fft", "qsort", "cjpeg", "caes",
    }
    assert set(SPEC_NAMES) == {
        "bzip2", "gcc", "mcf", "gobmk", "hmmer",
        "sjeng", "libquantum", "h264ref", "omnetpp", "astar",
    }
    assert len(all_names()) == 20


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        get_workload("doom")


def test_build_program_uses_default_scale():
    spec = get_workload("sha")
    program = build_program("sha")
    assert program.num_instructions == spec.build_default().num_instructions


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_runs_to_completion_functionally(name):
    spec = get_workload(name)
    result = run_functional(spec.build_for_test(), max_instructions=2_000_000)
    assert result.halted, f"{name} did not halt"
    assert not result.crashed, f"{name} crashed: {result.crash_reason}"
    assert result.output, f"{name} produced no output"


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_output_is_deterministic(name):
    spec = get_workload(name)
    first = run_functional(spec.build_for_test())
    second = run_functional(spec.build_for_test())
    assert first.output == second.output


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_scales_increase_work(name):
    spec = get_workload(name)
    small = run_functional(spec.build(spec.test_scale))
    large = run_functional(spec.build(spec.test_scale + 2))
    assert large.instructions >= small.instructions


def test_qsort_actually_sorts():
    result = run_functional(get_workload("qsort").build_for_test())
    sorted_flag = result.output[0]
    assert sorted_flag == 1


def test_stringsearch_finds_matches():
    result = run_functional(get_workload("stringsearch").build_for_test())
    assert result.output[0] > 0


def test_sha_digest_words_are_32_bit():
    result = run_functional(get_workload("sha").build_for_test())
    assert len(result.output) == 5
    assert all(0 <= word < (1 << 32) for word in result.output)


def test_mcf_converges_before_iteration_limit():
    result = run_functional(get_workload("mcf").build_for_test())
    distances_checksum, iterations = result.output
    assert distances_checksum > 0
    assert iterations >= 1


def test_workload_suites_are_labelled():
    assert get_workload("fft").suite == "mibench"
    assert get_workload("astar").suite == "spec"
    for name in ALL_NAMES:
        assert get_workload(name).description


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def test_deterministic_stream_reproducible():
    a = DeterministicStream(42)
    b = DeterministicStream(42)
    assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]
    assert DeterministicStream(1).next_u64() != DeterministicStream(2).next_u64()


def test_stream_bound_and_validation():
    stream = DeterministicStream(7)
    assert all(stream.next_below(10) < 10 for _ in range(100))
    with pytest.raises(ValueError):
        stream.next_below(0)


def test_word_and_byte_arrays():
    words = word_array(50, seed=1, bound=100)
    assert len(words) == 50 and all(0 <= w < 100 for w in words)
    data = byte_array(64, seed=2)
    assert len(data) == 64
    assert word_array(50, seed=1, bound=100) == words


def test_text_bytes_alphabet():
    text = text_bytes(200, seed=3)
    assert set(text) <= set(b"abcdefghijklmnopqrstuvwxyz ")


def test_image_matrix_dimensions_and_range():
    image = image_matrix(8, 6, seed=4)
    assert len(image) == 48
    assert all(0 <= pixel <= 255 for pixel in image)


def test_sorted_ramp():
    assert sorted_ramp(4, step=2) == [0, 2, 4, 6]
