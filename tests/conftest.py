"""Shared fixtures for the test suite.

The program builders and golden-run/fault-list helpers live in
:mod:`repro.testing` so the benchmark harness builds the exact same
inputs; this conftest only adapts them into pytest fixtures (and re-exports
the builders for tests that import them directly).
"""

from __future__ import annotations

import pytest

from repro.faults.golden import GoldenRecord
from repro.faults.model import FaultList
from repro.isa.program import Program
from repro.testing import (
    build_call_program,
    build_loop_program,
    shared_fault_list,
    shared_loop_golden,
    small_config as make_small_config,
)
from repro.uarch.config import MicroarchConfig

__all__ = ["build_loop_program", "build_call_program"]


@pytest.fixture
def loop_program() -> Program:
    return build_loop_program()


@pytest.fixture
def call_program() -> Program:
    return build_call_program()


@pytest.fixture
def small_config() -> MicroarchConfig:
    """A configuration with small structures (fast, stresses resource limits)."""
    return make_small_config()


@pytest.fixture(scope="session")
def loop_golden() -> GoldenRecord:
    """The memoised traced golden run of the default loop program."""
    return shared_loop_golden()


@pytest.fixture
def loop_fault_list(loop_golden) -> FaultList:
    """A small register-file fault list drawn against ``loop_golden``."""
    return shared_fault_list(loop_golden, sample_size=120, seed=1)
