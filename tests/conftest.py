"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.isa.registers import Reg as R
from repro.uarch.config import MicroarchConfig


def build_loop_program(iterations: int = 30, name: str = "loop") -> Program:
    """A small loop that loads, multiplies, stores and accumulates.

    Shared by many microarchitecture and fault-injection tests: it exercises
    the register file, the store queue and the L1D while staying only a few
    hundred cycles long.
    """
    b = ProgramBuilder(name)
    source = b.alloc_words("source", [(i * 7 + 3) % 101 for i in range(iterations)])
    sink = b.alloc_space("sink", 8 * iterations)
    b.movi(R.RDI, source)
    b.movi(R.RSI, sink)
    b.movi(R.RAX, 0)
    b.movi(R.RCX, 0)
    b.label("loop")
    b.load(R.RDX, R.RDI, 0)
    b.mul(R.RDX, R.RDX, 3)
    b.add(R.RAX, R.RAX, R.RDX)
    b.store(R.RDX, R.RSI, 0)
    b.add(R.RAX, R.RAX, (R.RSI, 0))
    b.add(R.RDI, R.RDI, 8)
    b.add(R.RSI, R.RSI, 8)
    b.add(R.RCX, R.RCX, 1)
    b.blt(R.RCX, iterations, "loop")
    b.out(R.RAX)
    b.halt()
    return b.build()


def build_call_program(calls: int = 10, name: str = "calls") -> Program:
    """A program dominated by CALL/RET pairs (return-address stack traffic)."""
    b = ProgramBuilder(name)
    b.movi(R.RAX, 1)
    b.movi(R.RCX, 0)
    b.label("loop")
    b.call("twice")
    b.add(R.RCX, R.RCX, 1)
    b.blt(R.RCX, calls, "loop")
    b.out(R.RAX)
    b.halt()
    b.label("twice")
    b.add(R.RAX, R.RAX, R.RAX)
    b.and_(R.RAX, R.RAX, 0xFFFF)
    b.ret()
    return b.build()


@pytest.fixture
def loop_program() -> Program:
    return build_loop_program()


@pytest.fixture
def call_program() -> Program:
    return build_call_program()


@pytest.fixture
def small_config() -> MicroarchConfig:
    """A configuration with small structures (fast, stresses resource limits)."""
    return MicroarchConfig().with_register_file(64).with_store_queue(16).with_l1d(16)
