"""End-to-end integration tests: MeRLiN vs the comprehensive baseline on real kernels.

These tests exercise the full stack — workload, out-of-order simulation,
profiling trace, ACE-like intervals, grouping, injection, classification —
and check the paper's headline claims in miniature: MeRLiN needs far fewer
injections, its classification stays close to the baseline, and its AVF
estimator agrees with the comprehensive one.
"""

import pytest

from repro.core.merlin import MerlinCampaign, MerlinConfig
from repro.core.metrics import coarse_homogeneity, fine_homogeneity, max_inaccuracy
from repro.core.stats_model import analyze_groups
from repro.faults.campaign import ComprehensiveCampaign
from repro.faults.classification import FaultEffectClass
from repro.faults.golden import capture_golden
from repro.faults.sampling import generate_fault_list
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure, structure_geometry
from repro.workloads import get_workload

CONFIG = MicroarchConfig().with_register_file(64).with_store_queue(16).with_l1d(16)
FAULTS = 90


def _study(benchmark: str, structure: TargetStructure):
    program = get_workload(benchmark).build_for_test()
    golden = capture_golden(program, CONFIG)
    geometry = structure_geometry(structure, CONFIG)
    fault_list = generate_fault_list(geometry, golden.cycles, sample_size=FAULTS, seed=13)
    baseline = ComprehensiveCampaign(golden, fault_list)
    merlin = MerlinCampaign(
        program, CONFIG, MerlinConfig(structure=structure),
        golden=golden, baseline=baseline,
    )
    merlin.use_fault_list(fault_list)
    merlin_result = merlin.run()
    baseline_result = baseline.run()
    return merlin_result, baseline_result


@pytest.mark.parametrize("workload,structure", [
    ("sha", TargetStructure.RF),
    ("qsort", TargetStructure.SQ),
    ("fft", TargetStructure.L1D),
])
def test_merlin_matches_baseline_on_real_kernels(workload, structure):
    merlin_result, baseline_result = _study(workload, structure)

    # Far fewer injections than the comprehensive campaign.
    assert merlin_result.injections_performed < baseline_result.injections_performed
    assert merlin_result.total_speedup > 1.5

    # Classification distributions stay close (percentile points).
    assert max_inaccuracy(baseline_result.counts, merlin_result.counts_final) <= 12.0

    # AVF agreement.
    assert abs(merlin_result.avf - baseline_result.avf) <= 0.12

    # Grouping homogeneity is high, as Figure 6/7 report.
    fine = fine_homogeneity(merlin_result.grouped, baseline_result.outcomes)
    coarse = coarse_homogeneity(merlin_result.grouped, baseline_result.outcomes)
    assert coarse >= fine >= 0.6

    # The theoretical model of Section 4.4.5 holds on measured data: identical
    # means, MeRLiN variance inflated by no more than the largest group.
    comparison = analyze_groups(merlin_result.grouped, baseline_result.outcomes)
    assert comparison.mean_difference == pytest.approx(0.0, abs=1e-12)
    largest_group = max(merlin_result.grouped.group_sizes(), default=1)
    assert comparison.variance_inflation <= largest_group + 1e-9


def test_ace_pruned_faults_are_all_masked_susan():
    """Soundness of the ACE-like step on a real kernel: pruned => Masked."""
    program = get_workload("susan_c").build_for_test()
    golden = capture_golden(program, CONFIG)
    geometry = structure_geometry(TargetStructure.RF, CONFIG)
    fault_list = generate_fault_list(geometry, golden.cycles, sample_size=60, seed=3)
    baseline = ComprehensiveCampaign(golden, fault_list)
    merlin = MerlinCampaign(program, CONFIG, MerlinConfig(structure=TargetStructure.RF),
                            golden=golden, baseline=baseline)
    merlin.use_fault_list(fault_list)
    result = merlin.run()
    pruned = [f for f in fault_list if f.fault_id in set(result.grouped.masked_fault_ids)]
    for fault in pruned[:15]:
        assert baseline.run_fault(fault).effect is FaultEffectClass.MASKED


def test_structure_size_sweep_changes_avf_direction():
    """Smaller register files concentrate live values, raising the AVF
    (the trend the paper's footnote 4 reports: 2.56% / 4.81% / 8.92% for
    256/128/64 registers)."""
    program = get_workload("sha").build_for_test()
    avfs = {}
    for regs in (256, 64):
        config = MicroarchConfig().with_register_file(regs)
        golden = capture_golden(program, config)
        geometry = structure_geometry(TargetStructure.RF, config)
        fault_list = generate_fault_list(geometry, golden.cycles, sample_size=80, seed=21)
        baseline = ComprehensiveCampaign(golden, fault_list)
        avfs[regs] = baseline.run().avf
    assert avfs[64] >= avfs[256]
