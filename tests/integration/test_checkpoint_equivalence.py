"""Differential harness: checkpoint fast-forward must be bit-identical.

The hard invariant of the checkpoint engine is that a fast-forwarded
injection run (restore the nearest golden checkpoint, simulate the tail,
optionally exit early on exact reconvergence) produces *exactly* the same
:class:`~repro.uarch.pipeline.SimulationResult` — every field, including
the full statistics counters and the final memory hash — and therefore the
same :class:`~repro.faults.classification.FaultEffectClass`, as the
cold-start path for every fault.

This harness drives randomized (program, structure, injection-cycle) cases
through both paths and compares the full results.  Across the
parametrized combinations it covers ≥ 200 distinct cases (see
``test_case_budget_is_at_least_200``).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

import pytest

from repro.faults.campaign import ComprehensiveCampaign
from repro.faults.golden import capture_golden
from repro.faults.injector import inject_fault
from repro.faults.model import FaultSpec
from repro.testing import (
    build_call_program,
    build_loop_program,
    shared_fault_list,
    small_config,
)
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure, structure_geometry

#: Randomized faults drawn per (program, structure, config) combination.
FAULTS_PER_COMBO = 18

MEDIUM_CONFIG = MicroarchConfig().with_register_file(128).with_store_queue(32)


@dataclass(frozen=True)
class Combo:
    label: str
    builder: object
    config: MicroarchConfig
    structure: TargetStructure
    checkpoint_interval: int
    simpoint_mode: bool = False


COMBOS = [
    Combo("loop30-small-RF", lambda: build_loop_program(30), small_config(),
          TargetStructure.RF, 24),
    Combo("loop30-small-SQ", lambda: build_loop_program(30), small_config(),
          TargetStructure.SQ, 24),
    Combo("loop30-small-L1D", lambda: build_loop_program(30), small_config(),
          TargetStructure.L1D, 24),
    Combo("loop60-small-RF", lambda: build_loop_program(60), small_config(),
          TargetStructure.RF, 48),
    Combo("loop60-small-SQ", lambda: build_loop_program(60), small_config(),
          TargetStructure.SQ, 48),
    Combo("loop60-small-L1D", lambda: build_loop_program(60), small_config(),
          TargetStructure.L1D, 48),
    Combo("calls12-small-RF", lambda: build_call_program(12), small_config(),
          TargetStructure.RF, 16),
    Combo("calls12-small-SQ", lambda: build_call_program(12), small_config(),
          TargetStructure.SQ, 16),
    Combo("loop30-medium-RF", lambda: build_loop_program(30), MEDIUM_CONFIG,
          TargetStructure.RF, 32),
    Combo("loop30-medium-L1D", lambda: build_loop_program(30), MEDIUM_CONFIG,
          TargetStructure.L1D, 32),
    Combo("loop30-small-RF-simpoint", lambda: build_loop_program(30),
          small_config(), TargetStructure.RF, 24, simpoint_mode=True),
    Combo("loop30-small-SQ-simpoint", lambda: build_loop_program(30),
          small_config(), TargetStructure.SQ, 24, simpoint_mode=True),
]


def random_faults(combo: Combo, golden, count: int) -> list:
    """Seeded random (entry, bit, cycle) samples over the whole geometry."""
    rng = random.Random(zlib.crc32(combo.label.encode()))
    geometry = structure_geometry(combo.structure, combo.config)
    return [
        FaultSpec(
            fault_id=index,
            structure=combo.structure,
            entry=rng.randrange(geometry.num_entries),
            bit=rng.randrange(geometry.bits_per_entry),
            cycle=rng.randrange(golden.cycles),
        )
        for index in range(count)
    ]


def assert_results_identical(cold, warm, fault):
    """Field-by-field comparison with a readable failure message."""
    assert cold.effect == warm.effect, (
        f"{fault.describe()}: effect {cold.effect} != {warm.effect}"
    )
    assert cold.simpoint_effect == warm.simpoint_effect, fault.describe()
    for name in cold.result.__dataclass_fields__:
        assert getattr(cold.result, name) == getattr(warm.result, name), (
            f"{fault.describe()}: SimulationResult.{name} differs: "
            f"{getattr(cold.result, name)!r} != {getattr(warm.result, name)!r}"
        )


def test_case_budget_is_at_least_200():
    """The harness below exercises >= 200 randomized differential cases."""
    assert len(COMBOS) * FAULTS_PER_COMBO >= 200


@pytest.mark.parametrize("combo", COMBOS, ids=lambda combo: combo.label)
def test_fast_forward_is_bit_identical_to_cold_start(combo):
    program = combo.builder()
    golden_cold = capture_golden(program, combo.config, trace=False)
    golden_warm = capture_golden(
        combo.builder(), combo.config, trace=False,
        checkpoint_interval=combo.checkpoint_interval,
    )
    assert golden_warm.result == golden_cold.result
    assert len(golden_warm.checkpoints) > 0

    for fault in random_faults(combo, golden_cold, FAULTS_PER_COMBO):
        cold = inject_fault(golden_cold, fault, simpoint_mode=combo.simpoint_mode)
        warm = inject_fault(
            golden_warm, fault,
            simpoint_mode=combo.simpoint_mode, fast_forward=True,
        )
        assert_results_identical(cold, warm, fault)


def test_campaign_outcomes_identical_with_and_without_checkpoints():
    """Whole-campaign equivalence, including the cycle-sorted scheduler."""
    config = small_config()
    golden_cold = capture_golden(build_loop_program(40), config, trace=False)
    golden_warm = capture_golden(build_loop_program(40), config, trace=False)
    fault_list = shared_fault_list(
        golden_cold, TargetStructure.RF, sample_size=80, seed=9
    )
    cold = ComprehensiveCampaign(golden_cold, fault_list).run()
    warm = ComprehensiveCampaign(
        golden_warm, fault_list, use_checkpoints=True
    ).run()
    assert warm.counts.counts == cold.counts.counts
    assert warm.outcomes == cold.outcomes
    assert warm.injections_performed == cold.injections_performed


def test_merlin_campaign_identical_with_and_without_checkpoints():
    from repro.core.merlin import MerlinCampaign, MerlinConfig

    program = build_loop_program(30)
    config = small_config()
    base = MerlinConfig(structure=TargetStructure.RF, initial_faults=150, seed=3)
    cold = MerlinCampaign(program, config, base).run()
    warm = MerlinCampaign(
        build_loop_program(30), config,
        MerlinConfig(structure=TargetStructure.RF, initial_faults=150, seed=3,
                     use_checkpoints=True),
    ).run()
    assert warm.counts_final.counts == cold.counts_final.counts
    assert warm.predicted_outcomes == cold.predicted_outcomes
    assert warm.representative_outcomes == cold.representative_outcomes
    assert warm.injections_performed == cold.injections_performed
