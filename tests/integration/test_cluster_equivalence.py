"""Differential harness: the cluster engine must be bit-identical to serial.

Extends PR 2's checkpoint differential harness one level up: a campaign
sharded across worker processes — any worker count, any shard size, cold
or warm artifact cache, fresh or resumed after a simulated kill — must
merge into a :class:`~repro.api.result.CampaignOutcome` whose
classification fingerprint (everything except wall-clock timings) equals
:class:`~repro.api.engine.SerialEngine`'s, for comprehensive, MeRLiN and
combined campaigns alike.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.api import CampaignSpec, ResultStore, SerialEngine
from repro.cluster import ClusterEngine, journal_path
from repro.cluster.remote import RemoteClusterEngine
from repro.cluster.transport import FakeTransport
from repro.testing import small_config
from repro.uarch.structures import TargetStructure

SMALL = small_config()


@dataclass(frozen=True)
class Combo:
    label: str
    method: str
    structure: TargetStructure
    workload: str
    scale: int
    faults: int
    seed: int
    workers: int
    shard_size: int


COMBOS = [
    Combo("comprehensive-RF-w2-s7", "comprehensive", TargetStructure.RF,
          "sha", 1, 60, 0, 2, 7),
    Combo("merlin-RF-w3-s5", "merlin", TargetStructure.RF,
          "sha", 1, 80, 1, 3, 5),
    Combo("both-RF-w2-s16", "both", TargetStructure.RF,
          "sha", 1, 50, 2, 2, 16),
    Combo("comprehensive-SQ-w2-s9", "comprehensive", TargetStructure.SQ,
          "qsort", 1, 50, 3, 2, 9),
    Combo("merlin-L1D-w2-s11", "merlin", TargetStructure.L1D,
          "stringsearch", 1, 60, 4, 2, 11),
]


def spec_of(combo: Combo) -> CampaignSpec:
    return CampaignSpec(
        workload=combo.workload, structure=combo.structure, config=SMALL,
        scale=combo.scale, faults=combo.faults, seed=combo.seed,
        method=combo.method,
    )


@pytest.fixture(scope="module")
def serial_outcomes():
    """One serial reference run per combo (goldens shared via the session)."""
    outcomes = SerialEngine().run([spec_of(combo) for combo in COMBOS])
    return {combo.label: outcome for combo, outcome in zip(COMBOS, outcomes)}


@pytest.mark.parametrize("combo", COMBOS, ids=lambda combo: combo.label)
def test_cluster_matches_serial_cold_and_warm(combo, serial_outcomes, tmp_path):
    spec = spec_of(combo)
    reference = serial_outcomes[combo.label].classification_fingerprint()

    engine = ClusterEngine(max_workers=combo.workers,
                           shard_size=combo.shard_size,
                           cache_dir=tmp_path / "cache")
    cold = engine.run([spec])[0]
    assert cold.classification_fingerprint() == reference
    assert engine.stats["golden_builds"] >= 1

    warm = engine.run([spec])[0]
    assert warm.classification_fingerprint() == reference
    assert engine.stats["golden_builds"] == 0, "warm cache must not rebuild"


def test_resumed_run_is_bit_identical(tmp_path):
    """Kill simulation: drop shards from the journal, resume, compare."""
    combo = COMBOS[0]
    spec = spec_of(combo)
    store = ResultStore(tmp_path / "store")
    cache = tmp_path / "cache"
    engine = ClusterEngine(max_workers=2, shard_size=5, cache_dir=cache)
    reference = engine.run([spec], store=store)[0].classification_fingerprint()
    assert engine.stats["shards_total"] >= 4

    # A killed run: the stored outcome never landed and the journal holds
    # only some shards, the last one torn mid-append.
    store.delete(spec.run_id())
    path = journal_path(engine.journal_dir, spec.run_id())
    lines = [line for line in path.read_text().splitlines(True)
             if json.loads(line).get("kind") != "merged"]
    survivors = lines[:1] + lines[1:3]
    path.write_text("".join(survivors) + '{"kind":"shard","shard_id":"to')

    resumed = ClusterEngine(max_workers=2, shard_size=5, cache_dir=cache,
                            resume=True)
    outcome = resumed.run([spec], store=store)[0]
    assert outcome.classification_fingerprint() == reference
    assert resumed.stats["shards_reused"] == 2
    assert resumed.stats["shards_executed"] == resumed.stats["shards_total"] - 2
    assert store.get(spec.run_id()).classification_fingerprint() == reference


def test_sweep_through_cluster_matches_serial(tmp_path):
    """Shards of several campaigns interleave in one pool, bit-identically."""
    specs = [
        spec_of(COMBOS[0]).replace(seed=7),
        spec_of(COMBOS[0]).replace(structure=TargetStructure.SQ, seed=8),
    ]
    serial = SerialEngine().run(specs)
    engine = ClusterEngine(max_workers=2, shard_size=8,
                           cache_dir=tmp_path / "cache")
    clustered = engine.run(specs, store=ResultStore(tmp_path / "store"))
    assert len(clustered) == len(serial)
    for left, right in zip(serial, clustered):
        assert left.classification_fingerprint() == right.classification_fingerprint()
    # Both campaigns share one workload/config identity: one golden build.
    assert engine.stats["golden_builds"] == 1


# ----------------------------------------------------------------------
# Remote transport differential: same fingerprints through the
# coordinator/lease/steal path, chaos included.
# ----------------------------------------------------------------------
def remote_engine(tmp_path, combo, schedule=(), workers=3, **kwargs):
    return RemoteClusterEngine(
        transport=FakeTransport(workers=workers, schedule=list(schedule)),
        shard_size=combo.shard_size, cache_dir=tmp_path / "cache",
        lease_timeout=4.0, **kwargs,
    )


def journaled_shard_ids(engine, spec):
    path = journal_path(engine.journal_dir, spec.run_id())
    return [json.loads(line)["shard_id"]
            for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "shard"]


@pytest.mark.parametrize("combo", COMBOS[:2], ids=lambda combo: combo.label)
def test_remote_matches_serial_cold_and_warm(combo, serial_outcomes, tmp_path):
    spec = spec_of(combo)
    reference = serial_outcomes[combo.label].classification_fingerprint()

    engine = remote_engine(tmp_path, combo)
    cold = engine.run([spec])[0]
    assert cold.classification_fingerprint() == reference
    assert engine.stats["golden_builds"] >= 1
    assert engine.stats["host_warms"] >= 1, "hosts must warm their caches"

    warm = remote_engine(tmp_path, combo)
    assert warm.run([spec])[0].classification_fingerprint() == reference
    assert warm.stats["golden_builds"] == 0, "warm cache must not rebuild"


def test_remote_survives_host_deaths_bit_identically(serial_outcomes, tmp_path):
    """Kill/steal mid-run: >= 2 injected host deaths, identical merge, and
    every shard exactly once in the journal."""
    combo = COMBOS[0]
    spec = spec_of(combo)
    reference = serial_outcomes[combo.label].classification_fingerprint()

    engine = remote_engine(
        tmp_path, combo,
        schedule=["die", "run", "die", "slow:3", "torn", "duplicate", "fail"],
    )
    outcome = engine.run([spec])[0]
    assert outcome.classification_fingerprint() == reference
    assert engine.stats["hosts_lost"] == 2
    assert engine.stats["shard_steals"] >= 2
    assert engine.stats["torn_results"] == 1
    assert engine.stats["duplicate_results"] == 1
    assert engine.stats["transport_retries"] >= 1

    shard_ids = journaled_shard_ids(engine, spec)
    assert len(shard_ids) == engine.stats["shards_total"]
    assert len(shard_ids) == len(set(shard_ids)), (
        "a stolen or duplicated shard must never be journaled twice")


def test_remote_seeded_chaos_campaign_matches_serial(serial_outcomes, tmp_path):
    combo = COMBOS[1]
    spec = spec_of(combo)
    schedule = FakeTransport.seeded_schedule(1234, 24)
    engine = remote_engine(tmp_path, combo, schedule=schedule, workers=4)
    outcome = engine.run([spec])[0]
    assert (outcome.classification_fingerprint()
            == serial_outcomes[combo.label].classification_fingerprint())
    shard_ids = journaled_shard_ids(engine, spec)
    assert len(shard_ids) == len(set(shard_ids)) == engine.stats["shards_total"]


def test_remote_resumes_torn_journal_bit_identically(tmp_path):
    """The remote engine resumes a killed run's torn journal exactly like
    the local cluster engine: journaled shards are never re-executed."""
    combo = COMBOS[0]
    spec = spec_of(combo)
    store = ResultStore(tmp_path / "store")
    engine = remote_engine(tmp_path, combo)
    reference = engine.run([spec], store=store)[0].classification_fingerprint()

    store.delete(spec.run_id())
    path = journal_path(engine.journal_dir, spec.run_id())
    lines = [line for line in path.read_text().splitlines(True)
             if json.loads(line).get("kind") != "merged"]
    survivors = lines[:1] + lines[1:3]
    path.write_text("".join(survivors) + '{"kind":"shard","shard_id":"to')

    resumed = remote_engine(tmp_path, combo, schedule=["die"], resume=True)
    outcome = resumed.run([spec], store=store)[0]
    assert outcome.classification_fingerprint() == reference
    assert resumed.stats["shards_reused"] == 2
    assert resumed.stats["shards_executed"] == resumed.stats["shards_total"] - 2
    assert store.get(spec.run_id()).classification_fingerprint() == reference


@pytest.mark.parametrize("model,params", [
    ("multi-bit", {"width": 2}),
    ("intermittent", {}),
    ("stuck-at-0", {}),
    ("stuck-at-1", {}),
], ids=lambda value: value if isinstance(value, str) else "")
def test_remote_chaos_matches_serial_across_fault_models(
        model, params, tmp_path):
    spec = CampaignSpec(
        workload="sha", structure=TargetStructure.RF, config=SMALL, scale=1,
        faults=30, seed=11, method="comprehensive",
        fault_model=model, model_params=params,
    )
    reference = SerialEngine().run([spec])[0].classification_fingerprint()
    engine = RemoteClusterEngine(
        transport=FakeTransport(workers=3, schedule=["die", "torn", "die"]),
        shard_size=6, cache_dir=tmp_path / "cache", lease_timeout=4.0,
    )
    outcome = engine.run([spec])[0]
    assert outcome.classification_fingerprint() == reference
    assert engine.stats["hosts_lost"] == 2
    shard_ids = journaled_shard_ids(engine, spec)
    assert len(shard_ids) == len(set(shard_ids)) == engine.stats["shards_total"]


def test_error_margin_derived_fault_list_matches(tmp_path):
    """faults=None (Leveugle-derived size) flows through sharding unchanged."""
    spec = CampaignSpec(
        workload="sha", structure=TargetStructure.RF, config=SMALL, scale=1,
        faults=None, error_margin=0.2, confidence=0.9, seed=5,
        method="comprehensive",
    )
    serial = SerialEngine().run([spec])[0]
    engine = ClusterEngine(max_workers=2, shard_size=6,
                           cache_dir=tmp_path / "cache")
    outcome = engine.run([spec])[0]
    assert outcome.classification_fingerprint() == serial.classification_fingerprint()
