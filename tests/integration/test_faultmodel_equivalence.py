"""Generalized differential harness: every engine, every fault model.

Extends the PR 2 (checkpoint) and PR 3 (cluster) harnesses across the
fault-model axis:

* injector level — for every model of the zoo, the checkpoint
  fast-forward path must reproduce the cold-start path bit for bit in
  every :class:`~repro.uarch.pipeline.SimulationResult` field, over
  seeded randomized (structure, anchor) cases;
* engine level — ``serial``, ``process``, ``checkpoint`` and ``cluster``
  must produce identical classification fingerprints for every model;
* seed level — the single-bit model must reproduce the *pre-refactor*
  campaigns exactly, checked against a golden fixture captured from the
  seed code before the fault-model generalization
  (``tests/fixtures/singlebit_golden.json``): same statistical draws,
  same per-fault outcomes, same MeRLiN predictions, same run ids.
"""

from __future__ import annotations

import json
import random
import zlib
from pathlib import Path

import pytest

from repro.api import CampaignSpec, SerialEngine, make_engine
from repro.cluster import ClusterEngine
from repro.core.merlin import MerlinCampaign, MerlinConfig
from repro.faults.campaign import ComprehensiveCampaign
from repro.faults.golden import capture_golden
from repro.faults.injector import inject_fault
from repro.faults.models import (
    IntermittentBurst,
    MultiBitAdjacent,
    SingleBitTransient,
    StuckAt0,
    StuckAt1,
    get_model,
)
from repro.faults.sampling import generate_fault_list
from repro.testing import build_loop_program, shared_loop_golden, small_config
from repro.uarch.structures import TargetStructure, structure_geometry

FIXTURE = Path(__file__).resolve().parent.parent / "fixtures" / "singlebit_golden.json"

#: (registry name, params) of every model the harness proves equivalent.
MODEL_CASES = [
    ("single", {}),
    ("multi-bit", {"width": 2}),
    ("multi-bit", {"width": 4}),
    ("intermittent", {"count": 3, "period": 2}),
    ("stuck-at-0", {"duration": 12}),
    ("stuck-at-1", {"duration": 12}),
]

MODEL_IDS = [
    f"{name}-{'-'.join(f'{k}{v}' for k, v in sorted(params.items())) or 'default'}"
    for name, params in MODEL_CASES
]

#: Randomized injector-level cases per (model, structure).
CASES_PER_MODEL = 8

STRUCTURES = [TargetStructure.RF, TargetStructure.SQ, TargetStructure.L1D]


def assert_results_identical(cold, warm, fault):
    assert cold.effect == warm.effect, (
        f"{fault.describe()}: effect {cold.effect} != {warm.effect}"
    )
    for name in cold.result.__dataclass_fields__:
        assert getattr(cold.result, name) == getattr(warm.result, name), (
            f"{fault.describe()}: SimulationResult.{name} differs: "
            f"{getattr(cold.result, name)!r} != {getattr(warm.result, name)!r}"
        )


# ----------------------------------------------------------------------
# Injector level: cold vs fast-forward, every model x structure
# ----------------------------------------------------------------------
@pytest.mark.parametrize(("model_name", "params"), MODEL_CASES, ids=MODEL_IDS)
def test_fast_forward_bit_identical_for_every_model(model_name, params):
    model = get_model(model_name, **params)
    config = small_config()
    golden_cold = capture_golden(build_loop_program(30), config, trace=False)
    golden_warm = capture_golden(build_loop_program(30), config, trace=False,
                                 checkpoint_interval=24)
    assert golden_warm.result == golden_cold.result

    for structure in STRUCTURES:
        geometry = structure_geometry(structure, config)
        rng = random.Random(zlib.crc32(f"{model.describe()}/{structure.name}".encode()))
        for index in range(CASES_PER_MODEL):
            fault = model.make_fault(
                index, structure,
                rng.randrange(geometry.num_entries),
                rng.randrange(model.bit_positions(geometry)),
                rng.randrange(golden_cold.cycles),
            )
            cold = inject_fault(golden_cold, fault)
            warm = inject_fault(golden_warm, fault, fast_forward=True)
            assert_results_identical(cold, warm, fault)


def test_injector_case_budget_is_at_least_100():
    """The loop above exercises >= 100 randomized differential cases."""
    assert len(MODEL_CASES) * len(STRUCTURES) * CASES_PER_MODEL >= 100


# ----------------------------------------------------------------------
# Engine level: serial == process == checkpoint == cluster, every model
# ----------------------------------------------------------------------
def spec_for(model_name, params) -> CampaignSpec:
    return CampaignSpec(
        workload="sha", scale=1, structure=TargetStructure.RF,
        config=small_config(), faults=40, seed=3, method="both",
        fault_model=model_name,
        model_params=tuple(sorted(params.items())),
    )


@pytest.fixture(scope="module")
def serial_by_model():
    """One serial reference outcome per model (goldens shared)."""
    specs = [spec_for(name, params) for name, params in MODEL_CASES]
    outcomes = SerialEngine().run(specs)
    return {
        model_id: outcome for model_id, outcome in zip(MODEL_IDS, outcomes)
    }


@pytest.mark.parametrize(("model_name", "params"), MODEL_CASES, ids=MODEL_IDS)
def test_checkpoint_engine_matches_serial(model_name, params, serial_by_model):
    model_id = MODEL_IDS[MODEL_CASES.index((model_name, params))]
    reference = serial_by_model[model_id].classification_fingerprint()
    outcome = make_engine("checkpoint").run([spec_for(model_name, params)])[0]
    assert outcome.classification_fingerprint() == reference


def test_process_engine_matches_serial_on_every_model(serial_by_model):
    """One pool, all models: per-spec worker fan-out is model-agnostic."""
    specs = [spec_for(name, params) for name, params in MODEL_CASES]
    outcomes = make_engine("process", max_workers=2).run(specs)
    for model_id, outcome in zip(MODEL_IDS, outcomes):
        assert outcome.classification_fingerprint() == (
            serial_by_model[model_id].classification_fingerprint()
        ), model_id


def test_cluster_engine_matches_serial_on_every_model(serial_by_model, tmp_path):
    """Sharded fan-out with extended fault payloads, cold then warm cache."""
    specs = [spec_for(name, params) for name, params in MODEL_CASES]
    engine = ClusterEngine(max_workers=2, shard_size=9,
                           cache_dir=tmp_path / "cache")
    cold = engine.run(specs)
    assert engine.stats["shards_executed"] > len(MODEL_CASES)
    warm_engine = ClusterEngine(max_workers=2, shard_size=9,
                                cache_dir=tmp_path / "cache")
    warm = warm_engine.run(specs)
    assert warm_engine.stats["golden_builds"] == 0
    for model_id, cold_out, warm_out in zip(MODEL_IDS, cold, warm):
        reference = serial_by_model[model_id].classification_fingerprint()
        assert cold_out.classification_fingerprint() == reference, model_id
        assert warm_out.classification_fingerprint() == reference, model_id


# ----------------------------------------------------------------------
# Seed level: single-bit reproduces the pre-refactor campaigns exactly
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fixture_payload():
    return json.loads(FIXTURE.read_text())


def test_single_bit_run_ids_unchanged_by_generalization(fixture_payload):
    recorded = fixture_payload["run_ids"]
    assert CampaignSpec(workload="sha").run_id() == recorded["default"]
    assert CampaignSpec(
        workload="qsort", structure=TargetStructure.RF,
        faults=2000, seed=7, method="both",
    ).run_id() == recorded["rf-2000"]


@pytest.mark.parametrize("index", range(3),
                         ids=lambda i: ("RF", "SQ", "L1D")[i])
def test_single_bit_campaigns_match_pre_refactor_fixture(index, fixture_payload):
    recorded = fixture_payload["campaigns"][index]
    structure = TargetStructure[recorded["structure"]]
    config = small_config()
    golden = shared_loop_golden(30, config, True)
    assert golden.cycles == recorded["golden_cycles"]

    geometry = structure_geometry(structure, config)
    faults = generate_fault_list(
        geometry, golden.cycles,
        sample_size=recorded["sample_size"], seed=recorded["seed"],
        model=SingleBitTransient(),
    )
    assert [[f.fault_id, f.entry, f.bit, f.cycle] for f in faults] == (
        recorded["fault_list"]
    ), "statistical draws moved"

    result = ComprehensiveCampaign(golden, faults).run()
    assert {str(k): v.value for k, v in result.outcomes.items()} == (
        recorded["comprehensive_outcomes"]
    ), "comprehensive outcomes moved"

    merlin = MerlinCampaign(
        build_loop_program(30), config,
        MerlinConfig(structure=structure,
                     initial_faults=recorded["sample_size"],
                     seed=recorded["seed"]),
        golden=golden,
    )
    merlin.use_fault_list(faults)
    mres = merlin.run()
    assert mres.injections_performed == recorded["merlin_injections"]
    assert {str(k): v.value for k, v in mres.predicted_outcomes.items()} == (
        recorded["merlin_predicted"]
    ), "MeRLiN predictions moved"


def test_all_zoo_models_are_covered():
    """The harness must cover every concrete model of the zoo."""
    covered = {name for name, _ in MODEL_CASES}
    zoo = {SingleBitTransient.name, MultiBitAdjacent.name,
           IntermittentBurst.name, StuckAt0.name, StuckAt1.name}
    assert covered == zoo
