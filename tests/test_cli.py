"""Tests for the command-line interface."""

import pytest

from repro import cli


def test_list_command_prints_all_workloads(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sha" in out and "astar" in out
    assert out.count("\n") == 20


def test_run_command_small_campaign(capsys):
    code = cli.main([
        "run", "--workload", "sha", "--structure", "RF",
        "--registers", "64", "--faults", "60", "--scale", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "AVF" in out and "injections" in out
    assert "Masked" in out


def test_run_command_with_baseline(capsys):
    code = cli.main([
        "run", "--workload", "fft", "--structure", "SQ",
        "--sq-entries", "16", "--faults", "40", "--scale", "3",
        "--baseline",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "baseline:" in out
    assert "percentile points" in out


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        cli.main(["run", "--workload", "doom"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        cli.main([])
