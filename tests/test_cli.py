"""Tests for the command-line interface."""

import pytest

from repro import cli


def test_list_command_prints_all_workloads(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sha" in out and "astar" in out
    assert out.count("\n") == 20


def test_run_command_small_campaign(capsys):
    code = cli.main([
        "run", "--workload", "sha", "--structure", "RF",
        "--registers", "64", "--faults", "60", "--scale", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "AVF" in out and "injections" in out
    assert "Masked" in out


def test_run_command_with_baseline(capsys):
    code = cli.main([
        "run", "--workload", "fft", "--structure", "SQ",
        "--sq-entries", "16", "--faults", "40", "--scale", "3",
        "--baseline",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "baseline:" in out
    assert "percentile points" in out


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        cli.main(["run", "--workload", "doom"])


def test_run_command_with_fault_model(capsys):
    code = cli.main([
        "run", "--workload", "sha", "--structure", "RF",
        "--registers", "64", "--faults", "40", "--scale", "1",
        "--fault-model", "multi-bit", "--model-param", "width=4",
        "--json",
    ])
    assert code == 0
    import json as _json
    payload = _json.loads(capsys.readouterr().out)
    assert payload["spec"]["fault_model"] == "multi-bit"
    assert payload["spec"]["model_params"] == [["width", 4]]


def test_parser_rejects_unknown_fault_model():
    with pytest.raises(SystemExit):
        cli.main(["run", "--workload", "sha", "--fault-model", "bitrot"])


def test_run_rejects_malformed_model_param(capsys):
    with pytest.raises(SystemExit):
        cli.main([
            "run", "--workload", "sha", "--scale", "1", "--faults", "10",
            "--fault-model", "stuck-at-0", "--model-param", "duration",
        ])
    assert "NAME=VALUE" in capsys.readouterr().err


def test_run_rejects_non_integer_model_param(capsys):
    with pytest.raises(SystemExit):
        cli.main([
            "run", "--workload", "sha", "--scale", "1", "--faults", "10",
            "--fault-model", "stuck-at-0", "--model-param", "duration=soon",
        ])
    assert "integer" in capsys.readouterr().err


def test_run_rejects_param_the_model_does_not_take(capsys):
    with pytest.raises(SystemExit):
        cli.main([
            "run", "--workload", "sha", "--scale", "1", "--faults", "10",
            "--fault-model", "single", "--model-param", "width=2",
        ])
    assert "does not accept" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        cli.main([])


def test_cluster_flags_rejected_for_other_engines():
    with pytest.raises(SystemExit):
        cli.main(["run", "--workload", "sha", "--faults", "10", "--scale", "1",
                  "--engine", "serial", "--resume"])


# ----------------------------------------------------------------------
# Cluster engine + resume through the CLI
# ----------------------------------------------------------------------
def test_run_cluster_engine_and_resume(tmp_path, capsys):
    import json

    from repro.cluster import journal_path

    store = str(tmp_path / "store")
    cache = str(tmp_path / "cache")
    base = [
        "run", "--workload", "sha", "--structure", "RF", "--registers", "64",
        "--faults", "40", "--scale", "1", "--engine", "cluster",
        "--workers", "1", "--shard-size", "9", "--cache-dir", cache,
        "--store", store,
    ]
    assert cli.main(base + ["--json"]) == 0
    reference = json.loads(capsys.readouterr().out)
    run_id = reference["run_id"]

    # Simulate a kill: the stored outcome never landed and the journal
    # kept only the header plus its first shard.
    (tmp_path / "store" / f"{run_id}.json").unlink()
    path = journal_path(tmp_path / "cache" / "journals", run_id)
    lines = path.read_text().splitlines(True)
    path.write_text("".join(lines[:2]))

    assert cli.main(["resume", run_id, "--cache-dir", cache,
                     "--store", store, "--json"]) == 0
    resumed = json.loads(capsys.readouterr().out)
    reference["merlin"].pop("wall_clock_seconds")
    resumed["merlin"].pop("wall_clock_seconds")
    assert resumed == reference


def test_resume_without_journal_fails_with_one_line(tmp_path, capsys):
    code = cli.main(["resume", "cafebabe0000", "--cache-dir", str(tmp_path)])
    assert code == 1
    err = capsys.readouterr().err
    assert "no journal" in err and "cafebabe0000" in err


# ----------------------------------------------------------------------
# Store-wide reporting and typed store errors
# ----------------------------------------------------------------------
@pytest.fixture()
def populated_store(tmp_path):
    store = str(tmp_path / "store")
    for workload, seed in (("sha", 0), ("sha", 1), ("qsort", 0)):
        assert cli.main([
            "run", "--workload", workload, "--structure", "RF",
            "--registers", "64", "--faults", "30", "--scale", "1",
            "--seed", str(seed), "--store", store,
        ]) == 0
    return store


def test_report_all_aggregates_per_workload(populated_store, capsys):
    import json

    capsys.readouterr()
    assert cli.main(["report", "--store", populated_store, "--all", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [(row["workload"], row["structure"]) for row in rows] == [
        ("qsort", "RF"), ("sha", "RF"),
    ]
    sha_row = rows[1]
    assert sha_row["campaigns"] == 2
    assert sha_row["injections"] > 0
    assert 0.0 <= sha_row["mean_avf"] <= 1.0
    assert sha_row["mean_speedup"] >= 1.0

    assert cli.main(["report", "--store", populated_store, "--all"]) == 0
    out = capsys.readouterr().out
    assert "aggregate over 3 campaigns" in out
    assert "qsort" in out and "sha" in out


def test_list_store_mode(populated_store, capsys):
    capsys.readouterr()
    assert cli.main(["list", "--store", populated_store]) == 0
    out = capsys.readouterr().out
    assert out.count("\n") == 3
    assert "sha/RF" in out and "qsort/RF" in out


def test_report_corrupt_artifact_exits_one_with_run_id(tmp_path, capsys):
    store_dir = tmp_path / "store"
    store_dir.mkdir()
    (store_dir / "deadbeef.json").write_text("{broken")
    code = cli.main(["report", "--store", str(store_dir), "--run-id", "deadbeef"])
    assert code == 1
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert "deadbeef" in err and "JSON" in err


def test_report_missing_run_id_still_exits_one(tmp_path, capsys):
    store_dir = tmp_path / "store"
    store_dir.mkdir()
    code = cli.main(["report", "--store", str(store_dir), "--run-id", "none"])
    assert code == 1
    assert "no stored outcome" in capsys.readouterr().err


def _fake_bench_payload(serial_speedup):
    baseline = {
        "cycles_per_sec": 20_000, "serial_faults_per_sec": 40.0,
        "checkpoint_faults_per_sec": 100.0, "timeline_payload_bytes": 4_000_000,
    }
    current = {
        "workload": "loop[60]", "structure": "RF", "faults": 300,
        "golden_cycles": 550, "cycles_per_sec": 50_000,
        "serial_faults_per_sec": round(40.0 * serial_speedup, 2),
        "checkpoint_faults_per_sec": 220.0, "checkpoints": 32,
        "timeline_payload_bytes": 250_000, "timeline_bytes_per_checkpoint": 7_800,
    }
    return {
        "benchmark": "simcore_throughput", "quick": True,
        "required_serial_speedup": 2.5, "baseline": baseline,
        "current": current,
        "speedup": {
            "machine_drift": 1.0,
            "cycles_per_sec": 2.5,
            "serial_faults_per_sec": serial_speedup,
            "serial_faults_per_sec_normalized": serial_speedup,
            "checkpoint_faults_per_sec": 2.2,
            "timeline_payload_shrink": 16.0,
        },
    }


def test_bench_writes_json_and_passes_gate(tmp_path, capsys, monkeypatch):
    import json

    import repro.perf as perf

    monkeypatch.setattr(perf, "measure_simcore_gated",
                        lambda quick: _fake_bench_payload(3.0))
    output = tmp_path / "BENCH_simcore.json"
    code = cli.main(["bench", "--quick", "--output", str(output)])
    assert code == 0
    captured = capsys.readouterr()
    assert "serial faults/sec" in captured.out
    assert "3.0x baseline" in captured.out
    payload = json.loads(output.read_text())
    assert payload["speedup"]["serial_faults_per_sec"] == 3.0


def test_bench_gate_failure_exits_one_unless_relaxed(tmp_path, capsys, monkeypatch):
    import repro.perf as perf

    monkeypatch.setattr(perf, "measure_simcore_gated",
                        lambda quick: _fake_bench_payload(1.2))
    output = tmp_path / "BENCH_simcore.json"
    monkeypatch.delenv("SIMCORE_BENCH_RELAXED", raising=False)
    code = cli.main(["bench", "--quick", "--output", str(output)])
    assert code == 1
    assert "regression gate failed" in capsys.readouterr().err

    monkeypatch.setenv("SIMCORE_BENCH_RELAXED", "1")
    code = cli.main(["bench", "--quick", "--output", str(output)])
    assert code == 0
    assert "below floor but relaxed" in capsys.readouterr().err
