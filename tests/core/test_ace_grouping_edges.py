"""Edge cases of the ACE bound and the two-step grouping algorithm.

Covers the previously untested paths: empty interval sets, single-fault
groups, all-ACE-masked lists and fully vulnerable lists.
"""

from __future__ import annotations

import pytest

from repro.core.ace import ace_like_avf, ace_like_fit
from repro.core.grouping import group_faults
from repro.core.intervals import IntervalSet, VulnerableInterval
from repro.faults.model import FaultList, FaultSpec
from repro.uarch.structures import StructureGeometry, TargetStructure

GEOMETRY = StructureGeometry(TargetStructure.RF, num_entries=8)


def empty_intervals() -> IntervalSet:
    return IntervalSet(TargetStructure.RF, {})


def interval(entry: int, start: int, end: int, rip: int = 4,
             upc: int = 0) -> VulnerableInterval:
    return VulnerableInterval(
        structure=TargetStructure.RF, entry=entry,
        start_cycle=start, end_cycle=end, rip=rip, upc=upc,
    )


def fault(fault_id: int, entry: int, cycle: int, bit: int = 0) -> FaultSpec:
    return FaultSpec(fault_id=fault_id, structure=TargetStructure.RF,
                     entry=entry, bit=bit, cycle=cycle)


# ----------------------------------------------------------------------
# ACE bound
# ----------------------------------------------------------------------
def test_ace_avf_of_empty_interval_set_is_zero():
    assert ace_like_avf(empty_intervals(), GEOMETRY, total_cycles=100) == 0.0
    assert ace_like_fit(empty_intervals(), GEOMETRY, total_cycles=100) == 0.0


def test_ace_avf_rejects_non_positive_cycle_counts():
    with pytest.raises(ValueError):
        ace_like_avf(empty_intervals(), GEOMETRY, total_cycles=0)
    with pytest.raises(ValueError):
        ace_like_avf(empty_intervals(), GEOMETRY, total_cycles=-5)


def test_ace_avf_is_capped_at_one():
    # One entry vulnerable for far longer than the (tiny) total window.
    intervals = IntervalSet(
        TargetStructure.RF, {0: [interval(0, 0, 10_000)]}
    )
    assert ace_like_avf(intervals, GEOMETRY, total_cycles=10) == 1.0


def test_ace_avf_counts_vulnerable_time_over_capacity():
    intervals = IntervalSet(
        TargetStructure.RF,
        {0: [interval(0, 0, 10)], 3: [interval(3, 20, 30)]},
    )
    # 20 vulnerable cycles over 8 entries x 100 cycles of capacity.
    assert ace_like_avf(intervals, GEOMETRY, total_cycles=100) == 20 / 800


# ----------------------------------------------------------------------
# Grouping
# ----------------------------------------------------------------------
def test_grouping_of_empty_fault_list():
    grouped = group_faults(FaultList(TargetStructure.RF), empty_intervals())
    assert grouped.initial_faults == 0
    assert grouped.masked_fault_ids == []
    assert grouped.groups == []
    assert grouped.injections_required == 0
    # Degenerate speedups stay finite and neutral.
    assert grouped.ace_speedup == 1.0
    assert grouped.total_speedup == 1.0
    assert grouped.grouping_speedup == 1.0


def test_grouping_with_no_intervals_masks_everything():
    faults = FaultList(TargetStructure.RF, [fault(i, i % 8, 10 + i) for i in range(6)])
    grouped = group_faults(faults, empty_intervals())
    assert sorted(grouped.masked_fault_ids) == list(range(6))
    assert grouped.groups == []
    assert grouped.faults_after_ace == 0
    assert grouped.injections_required == 0
    # All-ACE-masked: the fault-list reduction is total.
    assert grouped.ace_speedup == float(len(faults))
    assert grouped.total_speedup == float(len(faults))


def test_single_fault_group_elects_that_fault():
    intervals = IntervalSet(TargetStructure.RF, {2: [interval(2, 5, 40)]})
    faults = FaultList(TargetStructure.RF, [fault(7, 2, 12)])
    grouped = group_faults(faults, intervals)
    assert grouped.masked_fault_ids == []
    assert len(grouped.groups) == 1
    group = grouped.groups[0]
    assert group.size == 1
    assert group.representative == faults[0]
    assert group.member_fault_ids() == [7]
    assert grouped.injections_required == 1
    assert grouped.grouping_speedup == 1.0


def test_all_faults_in_intervals_no_ace_masking():
    intervals = IntervalSet(
        TargetStructure.RF,
        {0: [interval(0, 0, 50, rip=4)], 1: [interval(1, 0, 50, rip=9)]},
    )
    faults = FaultList(
        TargetStructure.RF,
        [fault(0, 0, 10), fault(1, 0, 20), fault(2, 1, 10), fault(3, 1, 20)],
    )
    grouped = group_faults(faults, intervals)
    assert grouped.masked_fault_ids == []
    assert grouped.faults_after_ace == grouped.initial_faults == 4
    assert grouped.ace_speedup == 1.0
    # One (rip, upc, byte) group per entry; all members share byte 0.
    assert grouped.num_groups == 2
    assert grouped.faults_in_groups == 4
    assert grouped.injections_required == 2
    assert grouped.total_speedup == 2.0


def test_byte_subgroups_split_and_prefer_distinct_instances():
    # Two dynamic instances of the same reader, faults in two bytes.
    intervals = IntervalSet(
        TargetStructure.RF,
        {4: [interval(4, 0, 20, rip=6), interval(4, 20, 40, rip=6)]},
    )
    faults = FaultList(
        TargetStructure.RF,
        [
            fault(0, 4, 5, bit=0),    # byte 0, first instance
            fault(1, 4, 25, bit=1),   # byte 0, second instance
            fault(2, 4, 6, bit=8),    # byte 1, first instance
            fault(3, 4, 26, bit=9),   # byte 1, second instance
        ],
    )
    grouped = group_faults(faults, intervals)
    assert grouped.num_groups == 2
    representatives = {group.byte: group.representative for group in grouped.groups}
    # Time diversity: the two byte sub-groups draw their representatives
    # from different dynamic instances of the reader.
    cycles = {representatives[0].cycle, representatives[1].cycle}
    assert len(cycles) == 2


def test_group_of_fault_mapping_covers_every_grouped_fault():
    intervals = IntervalSet(TargetStructure.RF, {1: [interval(1, 0, 30)]})
    faults = FaultList(
        TargetStructure.RF,
        [fault(0, 1, 3), fault(1, 1, 7), fault(2, 5, 9)],
    )
    grouped = group_faults(faults, intervals)
    mapping = grouped.group_of_fault()
    assert set(mapping) == {0, 1}
    assert grouped.masked_fault_ids == [2]
    assert grouped.group_sizes() == [2]
