"""Tests for homogeneity/AVF/FIT metrics, the ACE bound and the Section 4.4.5 model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ace import ace_like_avf, ace_like_fit
from repro.core.grouping import FaultGroup, GroupedFault, GroupedFaults
from repro.core.intervals import IntervalSet, VulnerableInterval
from repro.core.metrics import (
    RAW_FIT_PER_BIT,
    classification_inaccuracy,
    coarse_homogeneity,
    fine_homogeneity,
    fit_rate,
    group_non_masking_probabilities,
    max_inaccuracy,
    perfect_group_fraction,
)
from repro.core.stats_model import (
    analyze_groups,
    compare_estimators,
    estimator_moments,
)
from repro.faults.classification import ClassificationCounts, FaultEffectClass
from repro.faults.model import FaultSpec
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure, structure_geometry


def _grouped(fault_effects):
    """Build a GroupedFaults with one group per inner list of effects."""
    groups = []
    outcomes = {}
    fault_id = 0
    for index, effects in enumerate(fault_effects):
        members = []
        for effect in effects:
            interval = VulnerableInterval(TargetStructure.RF, 0, 0, 10, rip=index, upc=0)
            fault = FaultSpec(fault_id, TargetStructure.RF, 0, 0, 5)
            members.append(GroupedFault(fault=fault, interval=interval))
            outcomes[fault_id] = effect
            fault_id += 1
        group = FaultGroup(rip=index, upc=0, byte=0, members=members)
        group.representative = members[0].fault
        groups.append(group)
    grouped = GroupedFaults(
        structure_name="RF",
        initial_faults=fault_id,
        masked_fault_ids=[],
        groups=groups,
    )
    return grouped, outcomes


M = FaultEffectClass.MASKED
S = FaultEffectClass.SDC
C = FaultEffectClass.CRASH


def test_perfectly_homogeneous_groups_score_one():
    grouped, outcomes = _grouped([[M, M, M], [S, S]])
    assert fine_homogeneity(grouped, outcomes) == pytest.approx(1.0)
    assert coarse_homogeneity(grouped, outcomes) == pytest.approx(1.0)
    assert perfect_group_fraction(grouped, outcomes) == pytest.approx(1.0)


def test_mixed_group_reduces_homogeneity_per_equation_1():
    grouped, outcomes = _grouped([[M, M, S, S, S]])
    # Dominant class has 3 of 5 faults.
    assert fine_homogeneity(grouped, outcomes) == pytest.approx(0.6)
    assert perfect_group_fraction(grouped, outcomes) == 0.0


def test_coarse_homogeneity_merges_non_masked_classes():
    grouped, outcomes = _grouped([[S, S, C]])
    assert fine_homogeneity(grouped, outcomes) == pytest.approx(2 / 3)
    assert coarse_homogeneity(grouped, outcomes) == pytest.approx(1.0)


def test_homogeneity_weights_by_group_size():
    grouped, outcomes = _grouped([[M] * 9, [M, S]])
    expected = (9 * 1.0 + 2 * 0.5) / 11
    assert fine_homogeneity(grouped, outcomes) == pytest.approx(expected)


def test_homogeneity_of_empty_grouping_is_one():
    grouped, outcomes = _grouped([])
    assert fine_homogeneity(grouped, outcomes) == 1.0
    assert perfect_group_fraction(grouped, outcomes) == 1.0


def test_group_non_masking_probabilities():
    grouped, outcomes = _grouped([[M, M, S, S], [S]])
    probabilities = group_non_masking_probabilities(grouped, outcomes)
    assert probabilities == [(4, 0.5), (1, 1.0)]


def test_fit_rate_formula_and_bounds():
    assert fit_rate(0.5, 1000) == pytest.approx(0.5 * RAW_FIT_PER_BIT * 1000)
    assert fit_rate(0.0, 1000) == 0.0
    with pytest.raises(ValueError):
        fit_rate(1.5, 10)
    with pytest.raises(ValueError):
        fit_rate(0.5, -1)


def test_inaccuracy_helpers():
    a = ClassificationCounts.empty()
    b = ClassificationCounts.empty()
    a.add(M, 95)
    a.add(S, 5)
    b.add(M, 90)
    b.add(S, 10)
    per_class = classification_inaccuracy(a, b)
    assert per_class["Masked"] == pytest.approx(5.0)
    assert max_inaccuracy(a, b) == pytest.approx(5.0)


def test_ace_like_avf_and_fit():
    intervals = IntervalSet(TargetStructure.RF, {
        0: [VulnerableInterval(TargetStructure.RF, 0, 0, 50, 1, 0)],
        1: [VulnerableInterval(TargetStructure.RF, 1, 10, 30, 1, 0)],
    })
    geometry = structure_geometry(TargetStructure.RF, MicroarchConfig().with_register_file(64))
    avf = ace_like_avf(intervals, geometry, total_cycles=100)
    assert avf == pytest.approx((50 + 20) / (64 * 100))
    assert ace_like_fit(intervals, geometry, 100) == pytest.approx(
        avf * RAW_FIT_PER_BIT * geometry.total_bits
    )
    with pytest.raises(ValueError):
        ace_like_avf(intervals, geometry, total_cycles=0)


def test_estimator_moments_match_section_445_formulas():
    groups = [(10, 0.0), (5, 1.0), (4, 0.5)]
    total = 100
    comprehensive = estimator_moments(total, groups, merlin=False)
    merlin = estimator_moments(total, groups, merlin=True)
    expected_mean = (10 * 0.0 + 5 * 1.0 + 4 * 0.5) / total
    assert comprehensive.mean == pytest.approx(expected_mean)
    assert merlin.mean == pytest.approx(expected_mean)
    assert comprehensive.variance == pytest.approx(4 * 0.25 / total ** 2)
    assert merlin.variance == pytest.approx(16 * 0.25 / total ** 2)
    comparison = compare_estimators(total, 81, groups)
    assert comparison.mean_difference == pytest.approx(0.0)
    assert comparison.variance_inflation == pytest.approx(4.0)
    assert comparison.average_group_size == pytest.approx(19 / 3)
    assert "mean" in comparison.describe()


def test_estimator_moments_validation():
    with pytest.raises(ValueError):
        estimator_moments(0, [(1, 0.5)], merlin=False)
    with pytest.raises(ValueError):
        estimator_moments(10, [(1, 1.5)], merlin=False)


def test_analyze_groups_uses_measured_outcomes():
    grouped, outcomes = _grouped([[M, M, S], [S, S]])
    comparison = analyze_groups(grouped, outcomes)
    assert comparison.total_faults == 5
    assert comparison.comprehensive.mean == pytest.approx(3 / 5)
    assert comparison.merlin.mean == pytest.approx(comparison.comprehensive.mean)
    assert comparison.merlin.variance >= comparison.comprehensive.variance


def test_perfectly_homogeneous_groups_add_no_variance():
    """When every p_i is 0 or 1 both estimators have zero variance."""
    comparison = compare_estimators(50, 10, [(20, 1.0), (20, 0.0)])
    assert comparison.comprehensive.variance == 0.0
    assert comparison.merlin.variance == 0.0
    assert comparison.comprehensive.orders_below_mean() == math.inf


@settings(max_examples=40)
@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=50),
              st.floats(min_value=0.0, max_value=1.0)),
    min_size=1, max_size=20,
))
def test_variance_inflation_bounded_by_max_group_size(groups):
    total = sum(size for size, _ in groups) + 10
    comprehensive = estimator_moments(total, groups, merlin=False)
    merlin = estimator_moments(total, groups, merlin=True)
    assert merlin.mean == pytest.approx(comprehensive.mean)
    max_size = max(size for size, _ in groups)
    assert merlin.variance <= comprehensive.variance * max_size + 1e-12
    assert merlin.variance >= comprehensive.variance - 1e-12
