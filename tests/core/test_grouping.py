"""Tests for MeRLiN's two-step grouping algorithm."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grouping import group_faults
from repro.core.intervals import IntervalSet, VulnerableInterval
from repro.faults.model import FaultList, FaultSpec
from repro.uarch.structures import TargetStructure


def _interval_set(intervals):
    by_entry = {}
    for interval in intervals:
        by_entry.setdefault(interval.entry, []).append(interval)
    return IntervalSet(TargetStructure.RF, by_entry)


def _fault(fault_id, entry, bit, cycle):
    return FaultSpec(fault_id, TargetStructure.RF, entry, bit, cycle)


INTERVALS = _interval_set([
    # Entry 0: two dynamic instances read by the same static micro-op (rip 5, upc 0).
    VulnerableInterval(TargetStructure.RF, 0, 10, 20, rip=5, upc=0),
    VulnerableInterval(TargetStructure.RF, 0, 30, 40, rip=5, upc=0),
    # Entry 1: read by a different micro-op of the same instruction.
    VulnerableInterval(TargetStructure.RF, 1, 10, 25, rip=5, upc=1),
    # Entry 2: read by another instruction.
    VulnerableInterval(TargetStructure.RF, 2, 5, 50, rip=9, upc=0),
])


def test_non_vulnerable_faults_are_pruned_as_masked():
    faults = FaultList(TargetStructure.RF, [
        _fault(0, 0, 0, 5),     # before any write
        _fault(1, 0, 0, 25),    # between the two intervals of entry 0
        _fault(2, 3, 0, 15),    # entry with no intervals at all
    ])
    grouped = group_faults(faults, INTERVALS)
    assert sorted(grouped.masked_fault_ids) == [0, 1, 2]
    assert grouped.num_groups == 0
    assert grouped.faults_after_ace == 0


def test_step1_groups_by_rip_and_upc():
    faults = FaultList(TargetStructure.RF, [
        _fault(0, 0, 0, 15),    # entry 0, first instance  -> (5, 0)
        _fault(1, 0, 0, 35),    # entry 0, second instance -> (5, 0)
        _fault(2, 1, 0, 20),    # entry 1 -> (5, 1)
        _fault(3, 2, 0, 30),    # entry 2 -> (9, 0)
    ])
    grouped = group_faults(faults, INTERVALS)
    keys = {group.reader_key for group in grouped.groups}
    assert keys == {(5, 0), (5, 1), (9, 0)}
    sizes = {group.reader_key: group.size for group in grouped.groups}
    assert sizes[(5, 0)] == 2


def test_step2_splits_by_byte_position():
    faults = FaultList(TargetStructure.RF, [
        _fault(0, 0, 3, 15),    # byte 0
        _fault(1, 0, 12, 15),   # byte 1
        _fault(2, 0, 13, 35),   # byte 1, different dynamic instance
    ])
    grouped = group_faults(faults, INTERVALS)
    assert grouped.num_groups == 2
    byte_groups = {group.byte: group for group in grouped.groups}
    assert byte_groups[0].size == 1
    assert byte_groups[1].size == 2
    assert grouped.injections_required == 2


def test_representatives_prefer_distinct_dynamic_instances():
    """Figure 5: byte sub-groups of one static instruction spread across instances."""
    faults = FaultList(TargetStructure.RF, [
        _fault(0, 0, 0, 15),    # byte 0, instance ending at 20
        _fault(1, 0, 1, 35),    # byte 0, instance ending at 40
        _fault(2, 0, 8, 15),    # byte 1, instance ending at 20
        _fault(3, 0, 9, 35),    # byte 1, instance ending at 40
    ])
    grouped = group_faults(faults, INTERVALS)
    assert grouped.num_groups == 2
    instances = []
    for group in grouped.groups:
        member = next(m for m in group.members
                      if m.fault.fault_id == group.representative.fault_id)
        instances.append(member.dynamic_instance)
    assert len(set(instances)) == 2


def test_every_fault_is_either_masked_or_in_exactly_one_group():
    faults = FaultList(TargetStructure.RF, [
        _fault(i, i % 3, (i * 7) % 64, (i * 11) % 60) for i in range(40)
    ])
    grouped = group_faults(faults, INTERVALS)
    in_groups = [fid for group in grouped.groups for fid in group.member_fault_ids()]
    assert len(in_groups) == len(set(in_groups))
    assert sorted(in_groups + grouped.masked_fault_ids) == list(range(40))
    assert grouped.faults_in_groups + len(grouped.masked_fault_ids) == 40


def test_speedup_accounting():
    faults = FaultList(TargetStructure.RF, [
        _fault(0, 0, 0, 15),
        _fault(1, 0, 1, 35),
        _fault(2, 3, 0, 10),    # pruned
        _fault(3, 3, 0, 11),    # pruned
    ])
    grouped = group_faults(faults, INTERVALS)
    assert grouped.initial_faults == 4
    assert grouped.faults_after_ace == 2
    assert grouped.injections_required == 1
    assert grouped.ace_speedup == pytest.approx(2.0)
    assert grouped.grouping_speedup == pytest.approx(2.0)
    assert grouped.total_speedup == pytest.approx(4.0)
    assert "groups" in grouped.describe()


def test_group_of_fault_mapping():
    faults = FaultList(TargetStructure.RF, [_fault(0, 0, 0, 15), _fault(1, 2, 0, 30)])
    grouped = group_faults(faults, INTERVALS)
    mapping = grouped.group_of_fault()
    assert mapping[0].reader_key == (5, 0)
    assert mapping[1].reader_key == (9, 0)


def test_empty_fault_list():
    grouped = group_faults(FaultList(TargetStructure.RF, []), INTERVALS)
    assert grouped.initial_faults == 0
    assert grouped.total_speedup == 1.0


@settings(max_examples=30)
@given(st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),     # entry
        st.integers(min_value=0, max_value=63),    # bit
        st.integers(min_value=0, max_value=60),    # cycle
    ),
    max_size=80,
))
def test_grouping_partition_property(triples):
    faults = FaultList(TargetStructure.RF, [
        _fault(i, entry, bit, cycle) for i, (entry, bit, cycle) in enumerate(triples)
    ])
    grouped = group_faults(faults, INTERVALS)
    in_groups = [fid for group in grouped.groups for fid in group.member_fault_ids()]
    assert sorted(in_groups + grouped.masked_fault_ids) == sorted(f.fault_id for f in faults)
    # Every group's members share the reader key and byte, and the
    # representative is a member of its own group.
    for group in grouped.groups:
        assert group.representative.fault_id in group.member_fault_ids()
        for member in group.members:
            assert member.interval.reader_key == group.reader_key
            assert member.fault.byte == group.byte
    assert grouped.injections_required <= max(1, grouped.faults_after_ace)
    assert grouped.total_speedup >= grouped.ace_speedup or grouped.faults_after_ace == 0


# ----------------------------------------------------------------------
# Windowed fault models through the ACE-like pruning
# ----------------------------------------------------------------------
def test_windowed_fault_anchored_in_dead_time_is_not_pruned():
    """A pin/re-flip whose window reaches a later interval must group.

    Anchor cycle 25 lies between entry 0's two intervals (dead time), but
    the 10-cycle stuck-at window re-pins the bit at cycles 25..34 — and
    cycles 31..34 land inside the (30, 40] interval, whose terminating
    read consumes the corrupted value.  ACE-masking it would report
    Masked for a fault the comprehensive campaign classifies by actually
    injecting the window.
    """
    windowed = FaultSpec(0, TargetStructure.RF, entry=0, bit=0, cycle=25,
                         model="stuck-at-0", window=10, stuck_value=0)
    anchored_only = FaultSpec(1, TargetStructure.RF, entry=0, bit=0, cycle=25)
    grouped = group_faults(
        FaultList(TargetStructure.RF, [windowed, anchored_only]), INTERVALS
    )
    assert grouped.masked_fault_ids == [1]
    assert grouped.num_groups == 1
    (group,) = grouped.groups
    # Keyed by the first vulnerable application's interval: (rip 5, upc 0).
    assert group.reader_key == (5, 0)
    assert group.members[0].interval.end_cycle == 40


def test_windowed_fault_missing_every_interval_is_still_pruned():
    """Every application misses every interval: prunable exactly as before."""
    glitch = FaultSpec(0, TargetStructure.RF, entry=0, bit=0, cycle=21,
                       model="intermittent", window=8, period=7)
    # Active cycles 21 and 28 both fall in entry 0's dead time (20, 30].
    grouped = group_faults(FaultList(TargetStructure.RF, [glitch]), INTERVALS)
    assert grouped.masked_fault_ids == [0]
    assert grouped.num_groups == 0


def test_multi_entry_flip_set_prunes_against_every_entry():
    """A flip set spanning entries groups via its first vulnerable entry."""
    fault = FaultSpec(0, TargetStructure.RF, entry=3, bit=0, cycle=15,
                      model="multi-bit", flips=((3, 0), (2, 0)))
    grouped = group_faults(FaultList(TargetStructure.RF, [fault]), INTERVALS)
    # Entry 3 has no intervals, but entry 2's (5, 50] covers cycle 15.
    assert grouped.masked_fault_ids == []
    assert grouped.groups[0].reader_key == (9, 0)
