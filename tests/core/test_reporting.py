"""Tests for the report containers used by the experiment harness."""

import pytest

from repro.core.reporting import SeriesReport, TableReport


def test_table_report_add_rows_and_render():
    table = TableReport(title="Demo", columns=["name", "value"])
    table.add_row(["alpha", 1])
    table.add_row(["beta", 2.5])
    table.add_note("a note")
    text = table.render()
    assert "Demo" in text
    assert "alpha" in text and "2.50" in text
    assert "note: a note" in text
    assert table.column("value") == [1, 2.5]
    assert table.to_dicts()[0] == {"name": "alpha", "value": 1}


def test_table_report_rejects_wrong_row_width():
    table = TableReport(title="T", columns=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_table_report_renders_without_rows():
    table = TableReport(title="Empty", columns=["a"])
    assert "Empty" in table.render()


def test_series_report_averages_and_table():
    series = SeriesReport(title="S", x_label="bench")
    series.add_point("x", {"speedup": 10.0, "injections": 5})
    series.add_point("y", {"speedup": 30.0, "injections": 15})
    averages = series.averages()
    assert averages["speedup"] == pytest.approx(20.0)
    table = series.as_table()
    assert table.columns == ["bench", "speedup", "injections"]
    assert table.rows[-1][0] == "average"
    assert "S" in series.render()


def test_series_report_handles_missing_series_values():
    series = SeriesReport(title="S", x_label="x")
    series.add_point("a", {"one": 1.0})
    series.add_point("b", {"one": 2.0, "two": 4.0})
    # The late-appearing series is NaN for the first point and excluded from averages.
    assert series.averages()["two"] == pytest.approx(4.0)
