"""Tests for ACE-like vulnerable-interval construction."""

import pytest
from hypothesis import given, strategies as st

from repro.core.intervals import (
    IntervalSet,
    VulnerableInterval,
    build_interval_set,
    build_intervals_for_entry,
    classic_ace_intervals,
)
from repro.faults.golden import capture_golden
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure
from repro.uarch.trace import AccessEvent, AccessKind, AccessTracer

from tests.conftest import build_loop_program


def _event(entry, cycle, kind, rip=5, upc=0):
    return AccessEvent(TargetStructure.RF, entry, cycle, kind, rip, upc)


def test_write_then_read_creates_interval():
    events = [_event(0, 10, AccessKind.WRITE), _event(0, 25, AccessKind.READ, rip=3, upc=1)]
    intervals = build_intervals_for_entry(TargetStructure.RF, 0, events)
    assert len(intervals) == 1
    interval = intervals[0]
    assert (interval.start_cycle, interval.end_cycle) == (10, 25)
    assert interval.reader_key == (3, 1)
    assert interval.length == 15


def test_read_read_creates_second_interval_figure3():
    """Figure 3: intermediate committed reads split the ACE interval."""
    events = [
        _event(0, 10, AccessKind.WRITE),
        _event(0, 20, AccessKind.READ, rip=1),
        _event(0, 40, AccessKind.READ, rip=2),
    ]
    intervals = build_intervals_for_entry(TargetStructure.RF, 0, events)
    assert len(intervals) == 2
    assert intervals[0].end_cycle == 20 and intervals[1].end_cycle == 40
    assert intervals[1].start_cycle == 20
    assert intervals[0].rip == 1 and intervals[1].rip == 2


def test_write_then_write_is_not_vulnerable():
    events = [
        _event(0, 10, AccessKind.WRITE),
        _event(0, 30, AccessKind.WRITE),
        _event(0, 50, AccessKind.READ),
    ]
    intervals = build_intervals_for_entry(TargetStructure.RF, 0, events)
    assert len(intervals) == 1
    assert intervals[0].start_cycle == 30


def test_read_before_any_write_does_not_create_interval():
    events = [_event(0, 10, AccessKind.READ)]
    assert build_intervals_for_entry(TargetStructure.RF, 0, events) == []


def test_same_cycle_read_precedes_write():
    """A value read and overwritten in the same cycle still ends an interval."""
    events = [
        _event(0, 10, AccessKind.WRITE),
        _event(0, 20, AccessKind.WRITE),
        _event(0, 20, AccessKind.READ, rip=9),
    ]
    intervals = build_intervals_for_entry(TargetStructure.RF, 0, events)
    assert len(intervals) == 1
    assert intervals[0].end_cycle == 20
    assert intervals[0].start_cycle == 10


def test_interval_contains_semantics():
    interval = VulnerableInterval(TargetStructure.RF, 0, 10, 20, 1, 0)
    assert not interval.contains(10)   # flip at the write cycle is overwritten
    assert interval.contains(11)
    assert interval.contains(20)       # flip at the read cycle is consumed
    assert not interval.contains(21)


def test_interval_set_find_and_totals():
    tracer = AccessTracer(enabled=True)
    tracer.record_rf(2, 10, AccessKind.WRITE)
    tracer.record_rf(2, 30, AccessKind.READ, 4, 0)
    tracer.record_rf(2, 60, AccessKind.READ, 5, 0)
    tracer.record_rf(9, 5, AccessKind.WRITE)
    interval_set = build_interval_set(tracer, TargetStructure.RF)
    assert interval_set.num_intervals == 2
    assert interval_set.find(2, 15).rip == 4
    assert interval_set.find(2, 45).rip == 5
    assert interval_set.find(2, 61) is None
    assert interval_set.find(9, 100) is None
    assert interval_set.find(7, 10) is None
    assert interval_set.vulnerable_cycles(2) == 50
    assert interval_set.total_vulnerable_cycles() == 50
    assert interval_set.reader_keys() == [(4, 0), (5, 0)]
    assert "RF" in interval_set.describe()


def test_classic_ace_total_vulnerable_time_matches_ace_like(loop_program=None):
    """Merging read-to-read chains must not change the total vulnerable time."""
    program = build_loop_program()
    golden = capture_golden(program, MicroarchConfig().with_register_file(64))
    fine = build_interval_set(golden.tracer, TargetStructure.RF)
    merged = classic_ace_intervals(golden.tracer, TargetStructure.RF)
    assert fine.total_vulnerable_cycles() == merged.total_vulnerable_cycles()
    assert merged.num_intervals <= fine.num_intervals


def test_intervals_from_real_run_are_well_formed():
    program = build_loop_program()
    golden = capture_golden(program, MicroarchConfig().with_register_file(64))
    for structure in TargetStructure:
        interval_set = build_interval_set(golden.tracer, structure)
        assert interval_set.num_intervals > 0
        for entry in interval_set.entries_with_intervals:
            intervals = interval_set.intervals_of(entry)
            # Intervals of one entry are ordered and non-overlapping.
            for earlier, later in zip(intervals, intervals[1:]):
                assert earlier.end_cycle <= later.start_cycle or (
                    earlier.end_cycle == later.start_cycle
                )
            for interval in intervals:
                assert interval.start_cycle <= interval.end_cycle
                assert interval.entry == entry


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.booleans(),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_interval_invariants_property(raw_events):
    """Intervals always end at a read, never overlap, and cover only traced time."""
    events = [
        _event(0, cycle, AccessKind.READ if is_read else AccessKind.WRITE)
        for cycle, is_read in raw_events
    ]
    intervals = build_intervals_for_entry(TargetStructure.RF, 0, events)
    reads = sorted(e.cycle for e in events if e.is_read)
    for interval in intervals:
        assert interval.end_cycle in reads
        assert interval.start_cycle <= interval.end_cycle
    for earlier, later in zip(intervals, intervals[1:]):
        assert earlier.end_cycle <= later.end_cycle
        assert earlier.end_cycle <= later.start_cycle
