"""Tests for the MeRLiN campaign, the Relyzer baseline and the timing model."""

import pytest

from repro.core.merlin import MerlinCampaign, MerlinConfig
from repro.core.relyzer import RelyzerCampaign
from repro.core.timing import (
    CampaignTimeEstimate,
    DETAILED_CYCLES_PER_SECOND,
    EvaluationCostModel,
    speedup,
)
from repro.faults.campaign import ComprehensiveCampaign
from repro.faults.classification import FaultEffectClass
from repro.faults.golden import capture_golden
from repro.faults.sampling import generate_fault_list
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure, structure_geometry

from tests.conftest import build_loop_program

CONFIG = MicroarchConfig().with_register_file(64).with_store_queue(16).with_l1d(16)


@pytest.fixture(scope="module")
def golden():
    return capture_golden(build_loop_program(), CONFIG)


@pytest.fixture(scope="module")
def fault_list(golden):
    geometry = structure_geometry(TargetStructure.RF, CONFIG)
    return generate_fault_list(geometry, golden.cycles, sample_size=120, seed=11)


@pytest.fixture(scope="module")
def baseline(golden, fault_list):
    campaign = ComprehensiveCampaign(golden, fault_list)
    campaign.run()
    return campaign


@pytest.fixture(scope="module")
def merlin_result(golden, fault_list, baseline):
    campaign = MerlinCampaign(
        golden.program, CONFIG, MerlinConfig(structure=TargetStructure.RF),
        golden=golden, baseline=baseline,
    )
    campaign.use_fault_list(fault_list)
    return campaign.run()


def test_merlin_covers_every_initial_fault(merlin_result, fault_list):
    assert merlin_result.counts_final.total == len(fault_list)
    assert set(merlin_result.predicted_outcomes) == {f.fault_id for f in fault_list}


def test_merlin_injects_fewer_faults_than_baseline(merlin_result, fault_list):
    assert 0 < merlin_result.injections_performed < len(fault_list)
    assert merlin_result.total_speedup > 1.0
    assert merlin_result.ace_speedup >= 1.0
    assert merlin_result.total_speedup >= merlin_result.ace_speedup


def test_merlin_ace_pruned_faults_are_predicted_masked(merlin_result):
    for fault_id in merlin_result.grouped.masked_fault_ids:
        assert merlin_result.predicted_outcomes[fault_id] is FaultEffectClass.MASKED


def test_merlin_avf_close_to_baseline(merlin_result, baseline, fault_list):
    baseline_result = baseline.run()
    assert abs(merlin_result.avf - baseline_result.avf) < 0.15
    # Per-fault agreement must be high (homogeneity of the grouping).
    agreements = sum(
        1 for fault in fault_list
        if merlin_result.predicted_outcomes[fault.fault_id]
        == baseline_result.outcomes[fault.fault_id]
    )
    assert agreements / len(fault_list) > 0.8


def test_merlin_representative_outcomes_match_baseline(merlin_result, baseline):
    cached = baseline.cached_outcomes()
    for fault_id, effect in merlin_result.representative_outcomes.items():
        assert cached[fault_id].effect is effect


def test_merlin_ace_pruning_is_sound(merlin_result, baseline, fault_list):
    """Every fault the ACE-like step prunes really is masked when injected."""
    pruned = set(merlin_result.grouped.masked_fault_ids)
    sample = [fault for fault in fault_list if fault.fault_id in pruned][:10]
    for fault in sample:
        assert baseline.run_fault(fault).effect is FaultEffectClass.MASKED


def test_merlin_without_shared_baseline_runs_standalone(golden, fault_list):
    campaign = MerlinCampaign(
        golden.program, CONFIG,
        MerlinConfig(structure=TargetStructure.RF, initial_faults=40, seed=5),
        golden=golden,
    )
    result = campaign.run()
    assert result.counts_final.total == 40
    assert result.injections_performed <= 40


def test_merlin_requires_traced_golden():
    record = capture_golden(build_loop_program(), CONFIG, trace=False)
    campaign = MerlinCampaign(record.program, CONFIG,
                              MerlinConfig(structure=TargetStructure.RF), golden=record)
    with pytest.raises(ValueError):
        _ = campaign.golden


def test_merlin_rejects_mismatched_fault_list(golden):
    campaign = MerlinCampaign(golden.program, CONFIG,
                              MerlinConfig(structure=TargetStructure.RF), golden=golden)
    geometry = structure_geometry(TargetStructure.SQ, CONFIG)
    wrong = generate_fault_list(geometry, golden.cycles, sample_size=5, seed=1)
    with pytest.raises(ValueError):
        campaign.use_fault_list(wrong)


def test_relyzer_campaign_covers_all_faults(golden, fault_list, baseline):
    from repro.core.intervals import build_interval_set

    intervals = build_interval_set(golden.tracer, TargetStructure.RF)
    relyzer = RelyzerCampaign(golden, fault_list, intervals, baseline=baseline).run()
    assert relyzer.counts_final.total == len(fault_list)
    assert relyzer.injections_performed <= relyzer.faults_after_ace
    assert relyzer.total_speedup >= 1.0
    assert set(relyzer.predicted_outcomes) == {f.fault_id for f in fault_list}
    assert 0.0 <= relyzer.single_pilot_large_rip_fraction() <= 1.0
    # Groups are keyed by (static rip, control path) and paths have bounded depth.
    for group in relyzer.groups:
        assert len(group.path) <= 5
        assert group.pilot.fault_id in group.member_fault_ids()


def test_relyzer_requires_traced_golden(fault_list):
    from repro.core.intervals import build_interval_set

    record = capture_golden(build_loop_program(), CONFIG, trace=False)
    traced = capture_golden(build_loop_program(), CONFIG, trace=True)
    intervals = build_interval_set(traced.tracer, TargetStructure.RF)
    with pytest.raises(ValueError):
        RelyzerCampaign(record, fault_list, intervals)


def test_timing_model_basic_arithmetic():
    estimate = CampaignTimeEstimate(injections=60_000, cycles_per_run=10_000_000)
    assert estimate.seconds == pytest.approx(
        60_000 * 10_000_000 / DETAILED_CYCLES_PER_SECOND
    )
    assert estimate.months == pytest.approx(estimate.seconds / (30 * 24 * 3600))
    assert estimate.years == pytest.approx(estimate.seconds / (365 * 24 * 3600))


def test_cost_model_table3_row_and_gains():
    model = EvaluationCostModel()
    row = model.table3_row(1e13, 1e3, 1e9)
    assert row["gain"] == pytest.approx(1e10)
    assert row["exhaustive_years"] > 1e9
    assert row["remaining_months"] < 6
    assert model.exhaustive_list_size(100, 10) == 1000
    assert model.exhaustive_software_list_size(10, 128) == 1280
    months = model.total_months([
        {"injections": 100, "cycles_per_run": 1e6},
        {"injections": 200, "cycles_per_run": 1e6},
    ])
    assert months == pytest.approx(model.campaign_months(300, 1e6))


def test_speedup_helper():
    assert speedup(100, 10) == 10.0
    assert speedup(100, 0) == 100.0
    assert speedup(0, 0) == 1.0
