"""CLI observability surface: --metrics-out/--trace-out and `repro metrics`."""

import json

import pytest

from repro import cli
from repro.api import ResultStore
from repro.obs import (
    validate_prometheus_file,
    validate_prometheus_text,
    validate_trace_file,
)


def run_args(extra):
    return [
        "run", "--workload", "sha", "--structure", "RF", "--registers", "64",
        "--faults", "30", "--scale", "1", "--method", "comprehensive",
    ] + extra


def test_run_writes_valid_metrics_and_trace_files(tmp_path, capsys):
    metrics = tmp_path / "out" / "metrics.prom"
    trace = tmp_path / "out" / "trace.jsonl"
    code = cli.main(run_args([
        "--metrics-out", str(metrics), "--trace-out", str(trace),
    ]))
    assert code == 0
    types = validate_prometheus_file(metrics)
    assert types["repro_injections_total"] == "counter"
    assert types["repro_faults_per_second"] == "gauge"
    assert types["repro_fault_classifications_total"] == "counter"
    assert validate_trace_file(trace) >= 2  # campaign + golden_build spans
    names = {json.loads(line)["name"]
             for line in trace.read_text().splitlines()}
    assert {"campaign", "golden_build"} <= names


def test_run_with_store_persists_a_metrics_sidecar(tmp_path, capsys):
    store_dir = tmp_path / "store"
    metrics = tmp_path / "metrics.prom"
    code = cli.main(run_args([
        "--metrics-out", str(metrics), "--store", str(store_dir),
    ]))
    assert code == 0
    store = ResultStore(store_dir)
    (run_id,) = store.run_ids()  # the sidecar must not pollute the listing
    assert store.has_metrics(run_id)
    snapshot = store.load_metrics(run_id)
    assert snapshot["schema"] == 1

    capsys.readouterr()
    assert cli.main(["metrics", run_id, "--store", str(store_dir)]) == 0
    rendered = capsys.readouterr().out
    assert validate_prometheus_text(rendered)
    assert "repro_injections_total 30" in rendered

    assert cli.main(["metrics", run_id, "--store", str(store_dir),
                     "--json"]) == 0
    assert json.loads(capsys.readouterr().out) == snapshot


def test_metrics_command_without_a_snapshot_fails_cleanly(tmp_path, capsys):
    store_dir = tmp_path / "store"
    ResultStore(store_dir)  # empty store
    code = cli.main(["metrics", "0123456789abcdef", "--store", str(store_dir)])
    assert code == 1
    assert "no metrics snapshot" in capsys.readouterr().err


def test_cluster_run_emits_the_cluster_metric_families(tmp_path, capsys):
    metrics = tmp_path / "cluster.prom"
    trace = tmp_path / "cluster-trace.jsonl"
    code = cli.main(run_args([
        "--engine", "cluster", "--cache-dir", str(tmp_path / "cache"),
        "--shard-size", "10", "--workers", "2",
        "--metrics-out", str(metrics), "--trace-out", str(trace),
    ]))
    assert code == 0
    types = validate_prometheus_file(metrics)
    assert types["repro_faults_per_second"] == "gauge"
    assert types["repro_pool_queue_depth"] == "gauge"
    assert types["repro_artifact_cache_hit_ratio"] == "gauge"
    assert types["repro_shard_wall_seconds"] == "histogram"
    assert types["repro_journal_appends_total"] == "counter"
    text = metrics.read_text()
    assert 'repro_artifact_cache_hits_total{role="worker"}' in text
    # Worker spans merged home in deterministic shard order.
    names = [json.loads(line)["name"]
             for line in trace.read_text().splitlines()]
    assert names.count("shard") == names.count("run_shard") >= 1


def test_sweep_persists_one_sidecar_per_run(tmp_path, capsys):
    store_dir = tmp_path / "store"
    metrics = tmp_path / "sweep.prom"
    code = cli.main([
        "sweep", "--workloads", "sha,fft", "--structures", "RF",
        "--registers", "64", "--faults", "20", "--scale", "1",
        "--method", "comprehensive", "--json",
        "--metrics-out", str(metrics), "--store", str(store_dir),
    ])
    assert code == 0
    store = ResultStore(store_dir)
    run_ids = store.run_ids()
    assert len(run_ids) == 2
    for run_id in run_ids:
        assert store.has_metrics(run_id)
    # Multi-campaign runs label throughput with the batch sentinel.
    text = metrics.read_text()
    assert 'repro_faults_per_second{run_id="batch"}' in text


def test_parser_rejects_obs_flags_on_commands_without_them():
    with pytest.raises(SystemExit):
        cli.main(["report", "--store", "x", "--metrics-out", "y"])
