"""ArtifactCache hit/miss/store/evict accounting in the metrics registry.

The cache keeps its plain integer attributes (engine ``stats`` depend on
them) and mirrors every event into the active observability context with
a ``role`` label; these tests pin the two accountings in lockstep through
the cold-build, warm-load and corrupt-artifact self-heal paths.
"""

from repro import obs
from repro.api import CampaignSpec
from repro.cluster.artifacts import ArtifactCache
from repro.testing import shared_loop_golden, small_config
from repro.uarch.structures import TargetStructure


def cache_spec(**overrides):
    payload = dict(workload="sha", structure=TargetStructure.RF,
                   config=small_config(), scale=1, faults=10, seed=0)
    payload.update(overrides)
    return CampaignSpec(**payload)


def counters(registry, role="main"):
    return {
        kind: registry.value(f"repro_artifact_cache_{kind}_total",
                             role=role) or 0.0
        for kind in ("hits", "misses", "stores", "evictions")
    }


def test_cold_build_counts_miss_then_store(tmp_path):
    spec = cache_spec()
    golden = shared_loop_golden()
    with obs.observe() as ctx:
        cache = ArtifactCache(tmp_path)
        assert cache.load_golden(spec) is None
        cache.store_golden(spec, golden)
    assert counters(ctx.registry) == {
        "hits": 0.0, "misses": 1.0, "stores": 1.0, "evictions": 0.0}
    assert cache.stats() == {"hits": 0, "misses": 1, "stores": 1,
                             "evictions": 0}


def test_warm_load_counts_hit(tmp_path):
    spec = cache_spec()
    ArtifactCache(tmp_path).store_golden(spec, shared_loop_golden())
    with obs.observe() as ctx:
        loaded = ArtifactCache(tmp_path).load_golden(spec)
    assert loaded is not None
    assert loaded.cycles == shared_loop_golden().cycles
    assert counters(ctx.registry) == {
        "hits": 1.0, "misses": 0.0, "stores": 0.0, "evictions": 0.0}


def test_corrupt_artifact_counts_miss_and_self_heals(tmp_path):
    spec = cache_spec()
    cache = ArtifactCache(tmp_path)
    cache.store_golden(spec, shared_loop_golden())
    path = cache.golden_path(spec)
    path.write_bytes(b"definitely not a pickle")

    with obs.observe() as ctx:
        assert cache.load_golden(spec) is None
        assert not path.exists(), "a corrupt artifact must be removed"
        # Self-heal: the next store/load cycle works again.
        cache.store_golden(spec, shared_loop_golden())
        assert cache.load_golden(spec) is not None
    assert counters(ctx.registry) == {
        "hits": 1.0, "misses": 1.0, "stores": 1.0, "evictions": 0.0}


def test_eviction_over_cap_is_counted(tmp_path):
    with obs.observe() as ctx:
        cache = ArtifactCache(tmp_path, max_bytes=1)
        cache.store_golden(cache_spec(), shared_loop_golden())
    assert counters(ctx.registry)["stores"] == 1.0
    assert counters(ctx.registry)["evictions"] >= 1.0
    assert cache.evictions >= 1


def test_events_carry_the_contexts_role_label(tmp_path):
    spec = cache_spec()
    with obs.observe(role="worker") as ctx:
        cache = ArtifactCache(tmp_path)
        cache.load_golden(spec)  # miss
    assert counters(ctx.registry, role="worker")["misses"] == 1.0
    assert counters(ctx.registry, role="main")["misses"] == 0.0


def test_accounting_still_works_with_observability_off(tmp_path):
    assert obs.active() is None
    cache = ArtifactCache(tmp_path)
    assert cache.load_golden(cache_spec()) is None
    cache.store_golden(cache_spec(), shared_loop_golden())
    assert cache.stats() == {"hits": 0, "misses": 1, "stores": 1,
                             "evictions": 0}
