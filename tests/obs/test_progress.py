"""The progress(done, total) contract, asserted uniformly for all engines.

Every engine promises: ``done`` is monotonic, never exceeds ``total``,
``total`` never shrinks, and the final report says the work completed.
:class:`repro.testing.ProgressRecorder` is the shared assertion harness.
"""

import json

import pytest

from repro.api import CampaignSpec, Session, make_engine
from repro.cluster import ClusterEngine, journal_path
from repro.testing import ProgressRecorder, small_config
from repro.uarch.structures import TargetStructure


def tiny_spec(**overrides):
    payload = dict(workload="sha", structure=TargetStructure.RF,
                   config=small_config(), scale=1, faults=20, seed=0,
                   method="comprehensive")
    payload.update(overrides)
    return CampaignSpec(**payload)


@pytest.mark.parametrize("engine_name", ["serial", "process", "checkpoint"])
def test_per_campaign_engines_report_complete_monotonic_progress(engine_name):
    specs = [tiny_spec(seed=21), tiny_spec(seed=22)]
    recorder = ProgressRecorder()
    make_engine(engine_name).run(specs, progress=recorder)
    recorder.assert_contract(expect_total=len(specs))


def test_cluster_fresh_run_starts_at_zero_and_finishes_complete(tmp_path):
    spec = tiny_spec(seed=23)
    recorder = ProgressRecorder()
    engine = ClusterEngine(max_workers=2, shard_size=5,
                           cache_dir=tmp_path / "cache")
    engine.run([spec], progress=recorder)
    shards = engine.stats["shards_total"]
    assert recorder.calls[0] == (0, shards), (
        "a fresh run must seed progress at 0/N, not jump in mid-count"
    )
    recorder.assert_contract(expect_total=shards)


def test_cluster_resume_seeds_progress_with_journaled_shards(tmp_path):
    spec = tiny_spec(seed=24)
    cache = tmp_path / "cache"
    first = ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache)
    first.run([spec])
    shards = first.stats["shards_total"]

    # Fake a kill: no merged marker, one shard missing from the journal.
    path = journal_path(first.journal_dir, spec.run_id())
    lines = [line for line in path.read_text().splitlines(True)
             if json.loads(line).get("kind") != "merged"]
    path.write_text("".join(lines[:-1]))

    recorder = ProgressRecorder()
    rerun = ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache,
                          resume=True)
    rerun.run([spec], progress=recorder)
    assert recorder.calls[0] == (shards - 1, shards), (
        "a resumed run's first report must already count the journaled shards"
    )
    recorder.assert_contract(expect_total=shards)


def test_cluster_store_satisfied_batch_still_reports_completion(tmp_path):
    from repro.api import ResultStore

    spec = tiny_spec(seed=25)
    store = ResultStore(tmp_path / "store")
    cache = tmp_path / "cache"
    ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache).run(
        [spec], store=store)

    recorder = ProgressRecorder()
    ClusterEngine(max_workers=1, shard_size=5, cache_dir=cache).run(
        [spec], store=store, progress=recorder)
    # One work unit: the campaign reloaded from the store.
    recorder.assert_contract(expect_total=1)


def test_both_method_progress_stays_monotonic_across_campaign_halves():
    """With method='both' the comprehensive half's counts continue from the
    MeRLiN half's instead of restarting at zero."""
    spec = tiny_spec(seed=26, method="both")
    recorder = ProgressRecorder()
    Session().run(spec, progress=recorder)
    recorder.assert_contract()
    # Both halves actually reported: the total must have grown mid-run
    # when the comprehensive half extended the MeRLiN half's plan.
    totals = sorted({total for _, total in recorder.calls})
    assert len(totals) >= 2, "expected the total to grow when the second " \
                             "campaign half started"
