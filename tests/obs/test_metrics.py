"""MetricsRegistry semantics: registration, samples, snapshots, merging."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsError,
    MetricsRegistry,
    SNAPSHOT_SCHEMA_VERSION,
)


def test_counter_accumulates_and_rejects_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", "Requests.")
    counter.inc()
    counter.inc(3)
    assert registry.value("requests_total") == 4.0
    with pytest.raises(MetricsError, match="cannot decrease"):
        counter.inc(-1)


def test_labelled_counter_keeps_samples_apart():
    registry = MetricsRegistry()
    counter = registry.counter("events_total", "Events.", labels=("kind",))
    counter.inc(kind="hit")
    counter.inc(2, kind="miss")
    assert registry.value("events_total", kind="hit") == 1.0
    assert registry.value("events_total", kind="miss") == 2.0
    assert registry.total("events_total") == 3.0


def test_label_set_mismatch_raises():
    registry = MetricsRegistry()
    counter = registry.counter("events_total", "Events.", labels=("kind",))
    with pytest.raises(MetricsError, match="takes labels"):
        counter.inc()
    with pytest.raises(MetricsError, match="takes labels"):
        counter.inc(kind="hit", extra="no")


def test_gauge_sets_and_reads_back():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth", "Queue depth.")
    assert gauge.get() is None
    gauge.set(7)
    gauge.set(3)
    assert gauge.get() == 3.0
    assert registry.value("depth") == 3.0


def test_histogram_buckets_and_stats():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency", "Latency.", buckets=(0.1, 1.0))
    histogram.observe(0.05)   # first bucket
    histogram.observe(0.5)    # second bucket
    histogram.observe(5.0)    # +Inf bucket
    assert registry.histogram_stats("latency") == (5.55, 3)
    snapshot = registry.to_snapshot()
    (family,) = [f for f in snapshot["families"] if f["name"] == "latency"]
    assert family["buckets"] == [0.1, 1.0]
    assert family["samples"][0]["counts"] == [1, 1, 1]


def test_value_on_histogram_raises():
    registry = MetricsRegistry()
    registry.histogram("latency", "Latency.")
    with pytest.raises(MetricsError, match="histogram"):
        registry.value("latency")


def test_unknown_families_read_as_absent():
    registry = MetricsRegistry()
    assert registry.value("nope") is None
    assert registry.total("nope") == 0.0
    assert registry.histogram_stats("nope") is None


def test_reregistration_is_idempotent_but_conflicts_raise():
    registry = MetricsRegistry()
    registry.counter("events_total", "Events.", labels=("kind",))
    registry.counter("events_total", "Events.", labels=("kind",)).inc(kind="x")
    assert registry.total("events_total") == 1.0
    with pytest.raises(MetricsError, match="already registered"):
        registry.gauge("events_total")
    with pytest.raises(MetricsError, match="already registered"):
        registry.counter("events_total", labels=("other",))


def test_snapshot_is_json_safe_and_deterministic():
    registry = MetricsRegistry()
    counter = registry.counter("z_total", "Z.", labels=("k",))
    counter.inc(k="b")
    counter.inc(k="a")
    registry.gauge("a_gauge", "A.").set(1)
    registry.histogram("m_hist", "M.", buckets=DEFAULT_TIME_BUCKETS).observe(0.2)
    snapshot = registry.to_snapshot()
    assert snapshot["schema"] == SNAPSHOT_SCHEMA_VERSION
    names = [family["name"] for family in snapshot["families"]]
    assert names == sorted(names)
    (z,) = [f for f in snapshot["families"] if f["name"] == "z_total"]
    assert [s["labels"] for s in z["samples"]] == [["a"], ["b"]]
    # Round-trips through JSON byte-for-byte.
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_merge_adds_counters_and_histograms_overwrites_gauges():
    left = MetricsRegistry()
    left.counter("events_total", "E.").inc(2)
    left.gauge("depth", "D.").set(9)
    left.histogram("wall", "W.", buckets=(1.0,)).observe(0.5)

    right = MetricsRegistry()
    right.counter("events_total", "E.").inc(5)
    right.gauge("depth", "D.").set(4)
    right.histogram("wall", "W.", buckets=(1.0,)).observe(2.0)

    left.merge_snapshot(right.to_snapshot())
    assert left.value("events_total") == 7.0
    assert left.value("depth") == 4.0
    assert left.histogram_stats("wall") == (2.5, 2)
    left.merge_snapshot(None)  # no-op
    assert left.value("events_total") == 7.0


def test_merge_creates_families_absent_locally():
    left = MetricsRegistry()
    right = MetricsRegistry()
    right.counter("only_there_total", "T.", labels=("k",)).inc(3, k="x")
    left.merge_snapshot(right.to_snapshot())
    assert left.value("only_there_total", k="x") == 3.0


def test_merge_rejects_wrong_schema_and_bucket_drift():
    registry = MetricsRegistry()
    with pytest.raises(MetricsError, match="schema"):
        registry.merge_snapshot({"schema": 99, "families": []})

    registry.histogram("wall", "W.", buckets=(1.0, 2.0)).observe(0.5)
    other = MetricsRegistry()
    other.histogram("wall", "W.", buckets=(1.0,)).observe(0.5)
    with pytest.raises(MetricsError):
        registry.merge_snapshot(other.to_snapshot())


def test_from_snapshot_round_trips():
    registry = MetricsRegistry()
    registry.counter("events_total", "E.", labels=("k",)).inc(4, k="a")
    registry.histogram("wall", "W.", buckets=(0.5, 5.0)).observe(1.0)
    registry.gauge("depth", "D.").set(2)
    snapshot = registry.to_snapshot()
    rebuilt = MetricsRegistry.from_snapshot(snapshot)
    assert rebuilt.to_snapshot() == snapshot
