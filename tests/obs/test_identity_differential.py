"""Observability must never perturb identity: the differential proof.

The hard invariant of ``repro.obs`` is that it is pure measurement: run
ids, classification fingerprints and journal contents are bit-identical
with tracing/metrics on and off, for every engine.  These tests run each
engine twice — once bare, once under :func:`repro.obs.observe` — and
compare the identity-bearing artifacts, then sanity-check that the
observed leg actually measured something (so a silently dead seam can't
masquerade as a passing differential).
"""

import json

import pytest

from repro import obs
from repro.api import CampaignSpec, make_engine
from repro.cluster import ClusterEngine, journal_path
from repro.testing import small_config
from repro.uarch.structures import TargetStructure

FAULTS = 30


def tiny_spec(**overrides):
    payload = dict(workload="sha", structure=TargetStructure.RF,
                   config=small_config(), scale=1, faults=FAULTS, seed=0,
                   method="comprehensive")
    payload.update(overrides)
    return CampaignSpec(**payload)


@pytest.mark.parametrize("engine_name", ["serial", "process", "checkpoint"])
def test_engine_identity_is_unchanged_by_observability(engine_name):
    spec = tiny_spec(seed=11)
    bare = make_engine(engine_name).run([spec])[0]
    with obs.observe() as ctx:
        observed = make_engine(engine_name).run([spec])[0]
        ctx.finalize(run_id=spec.run_id())

    assert observed.run_id == bare.run_id == spec.run_id()
    assert (observed.classification_fingerprint()
            == bare.classification_fingerprint())

    # The observed leg must have measured real work (counters merged from
    # workers where the engine fans out).
    registry = ctx.registry
    assert registry.total("repro_injections_total") == bare.comprehensive.injections
    assert registry.total("repro_campaigns_total") == 1.0
    assert registry.value("repro_faults_per_second",
                          run_id=spec.run_id()) > 0
    per_effect = sum(
        registry.value("repro_fault_classifications_total", effect=effect) or 0
        for effect in bare.comprehensive.counts
    )
    assert per_effect == bare.comprehensive.injections
    if engine_name == "checkpoint":
        assert registry.total("repro_checkpoint_restores_total") > 0
        assert registry.total("repro_checkpoint_cycles_fast_forwarded_total") > 0


def _journal_records(engine: ClusterEngine, run_id: str):
    """Parsed journal lines with the one legitimately timing-bearing field
    (the merged marker's wall clock) normalised away."""
    text = journal_path(engine.journal_dir, run_id).read_text()
    records = [json.loads(line) for line in text.splitlines()]
    for record in records:
        if record.get("kind") == "merged":
            record["stats"]["wall_clock_seconds"] = 0.0
    return records


def test_cluster_identity_and_journal_are_unchanged_by_observability(tmp_path):
    spec = tiny_spec(seed=12)

    # max_workers=1 keeps shard completion (hence journal line order)
    # deterministic, so the two journals can be compared record for record.
    bare_engine = ClusterEngine(max_workers=1, shard_size=10,
                                cache_dir=tmp_path / "bare")
    bare = bare_engine.run([spec])[0]

    observed_engine = ClusterEngine(max_workers=1, shard_size=10,
                                    cache_dir=tmp_path / "observed")
    with obs.observe() as ctx:
        observed = observed_engine.run([spec])[0]
        ctx.finalize(run_id=spec.run_id())

    assert observed.run_id == bare.run_id == spec.run_id()
    assert (observed.classification_fingerprint()
            == bare.classification_fingerprint())

    bare_records = _journal_records(bare_engine, spec.run_id())
    observed_records = _journal_records(observed_engine, spec.run_id())
    assert observed_records == bare_records

    # Worker-side counters merged home: injections, shard wall times,
    # journal appends (header + one line per shard + merged marker).
    registry = ctx.registry
    assert registry.total("repro_injections_total") == FAULTS
    executed = observed_engine.stats["shards_executed"]
    assert registry.total("repro_shards_executed_total") == executed
    stats = registry.histogram_stats("repro_shard_wall_seconds")
    assert stats is not None and stats[1] == executed
    assert registry.total("repro_journal_appends_total") == len(observed_records)
    assert registry.value("repro_pool_queue_depth") == 0.0


def test_cluster_resume_counts_reused_shards_and_journal_repairs(tmp_path):
    """A resumed run under observability reports the reused shards and the
    torn-tail repair — without changing what the resume produces."""
    spec = tiny_spec(seed=13)
    cache = tmp_path / "cache"
    first = ClusterEngine(max_workers=1, shard_size=10, cache_dir=cache)
    outcome = first.run([spec])[0]
    shards = first.stats["shards_total"]

    # Fake a kill: drop the merged marker and one shard, tear the tail.
    path = journal_path(first.journal_dir, spec.run_id())
    lines = [line for line in path.read_text().splitlines(True)
             if json.loads(line).get("kind") != "merged"]
    path.write_text("".join(lines[:-1]) + '{"kind":"shard","sh')

    rerun = ClusterEngine(max_workers=1, shard_size=10, cache_dir=cache,
                          resume=True)
    with obs.observe() as ctx:
        again = rerun.run([spec])[0]
    assert again.classification_fingerprint() == outcome.classification_fingerprint()
    registry = ctx.registry
    assert registry.total("repro_journal_repairs_total") == 1.0
    assert registry.total("repro_shards_reused_total") == shards - 1
    assert registry.total("repro_shards_executed_total") == 1.0
    # Only the re-executed shard's faults were injected again.
    assert registry.total("repro_injections_total") < FAULTS


def test_store_hits_count_as_campaigns_from_store(tmp_path):
    from repro.api import ResultStore

    spec = tiny_spec(seed=14)
    store = ResultStore(tmp_path / "store")
    make_engine("serial").run([spec], store=store)
    with obs.observe() as ctx:
        make_engine("serial").run([spec], store=store)
    assert ctx.registry.total("repro_campaigns_from_store_total") == 1.0
    assert ctx.registry.total("repro_campaigns_total") == 0.0
    assert ctx.registry.total("repro_injections_total") == 0.0
