"""Prometheus/trace rendering and the strict validators CI leans on."""

import pytest

from repro.obs.export import (
    ExportError,
    render_prometheus,
    render_trace_jsonl,
    validate_prometheus_file,
    validate_prometheus_text,
    validate_trace_file,
    validate_trace_jsonl,
    write_metrics_file,
    write_trace_file,
)
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("repro_events_total", "Events.", labels=("kind",))
    counter.inc(3, kind="hit")
    counter.inc(kind="miss")
    registry.gauge("repro_depth", "Depth.").set(2.5)
    histogram = registry.histogram("repro_wall_seconds", "Wall.",
                                   buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(9.0)
    return registry


def test_render_prometheus_passes_its_own_validator():
    text = render_prometheus(populated_registry())
    types = validate_prometheus_text(text)
    assert types == {
        "repro_events_total": "counter",
        "repro_depth": "gauge",
        "repro_wall_seconds": "histogram",
    }


def test_render_prometheus_shapes():
    text = render_prometheus(populated_registry())
    lines = text.splitlines()
    assert "# HELP repro_events_total Events." in lines
    assert "# TYPE repro_events_total counter" in lines
    # Integer-valued samples render without a trailing .0.
    assert 'repro_events_total{kind="hit"} 3' in lines
    assert "repro_depth 2.5" in lines
    # Histogram buckets are cumulative and end at +Inf.
    assert 'repro_wall_seconds_bucket{le="0.1"} 1' in lines
    assert 'repro_wall_seconds_bucket{le="1"} 2' in lines
    assert 'repro_wall_seconds_bucket{le="+Inf"} 3' in lines
    assert "repro_wall_seconds_sum 9.55" in lines
    assert "repro_wall_seconds_count 3" in lines
    assert text.endswith("\n")


def test_render_skips_sampleless_families_and_empty_registry():
    registry = MetricsRegistry()
    registry.counter("registered_but_untouched_total", "Never incremented.")
    assert render_prometheus(registry) == ""


def test_label_values_are_escaped():
    registry = MetricsRegistry()
    registry.counter("odd_total", "Odd.", labels=("path",)).inc(
        path='a"b\\c\nd')
    text = render_prometheus(registry)
    assert 'path="a\\"b\\\\c\\nd"' in text
    validate_prometheus_text(text)


def test_validator_rejects_sample_without_type():
    with pytest.raises(ExportError, match="no preceding # TYPE"):
        validate_prometheus_text("orphan_metric 1\n")


def test_validator_rejects_malformed_type_line():
    with pytest.raises(ExportError, match="malformed TYPE"):
        validate_prometheus_text("# TYPE weird summary\nweird 1\n")


def test_validator_rejects_non_numeric_value():
    text = "# TYPE ok counter\nok lots\n"
    with pytest.raises(ExportError, match="non-numeric"):
        validate_prometheus_text(text)


def test_validator_rejects_histogram_missing_series():
    text = ("# TYPE wall histogram\n"
            'wall_bucket{le="+Inf"} 1\n')
    with pytest.raises(ExportError, match="missing bucket/sum/count"):
        validate_prometheus_text(text)


def test_validator_rejects_malformed_labels():
    text = "# TYPE ok counter\nok{kind=hit} 1\n"
    with pytest.raises(ExportError, match="malformed labels"):
        validate_prometheus_text(text)


def test_trace_jsonl_round_trip():
    events = [
        {"name": "golden_build", "ph": "X", "ts": 10, "dur": 5,
         "pid": 1, "tid": 2, "args": {"workload": "sha"}},
        {"name": "mark", "ph": "i", "ts": 11, "s": "p", "pid": 1, "tid": 2},
    ]
    text = render_trace_jsonl(events)
    assert text.count("\n") == 2
    assert validate_trace_jsonl(text) == 2


def test_trace_validator_rejects_malformed_events():
    with pytest.raises(ExportError, match="not valid JSON"):
        validate_trace_jsonl("{nope\n")
    with pytest.raises(ExportError, match="not an object"):
        validate_trace_jsonl("[1,2]\n")
    with pytest.raises(ExportError, match="string 'name'"):
        validate_trace_jsonl('{"ph":"X","ts":1,"pid":1,"tid":1,"dur":1}\n')
    with pytest.raises(ExportError, match="unknown phase"):
        validate_trace_jsonl(
            '{"name":"a","ph":"Z","ts":1,"pid":1,"tid":1}\n')
    with pytest.raises(ExportError, match="must be an integer"):
        validate_trace_jsonl(
            '{"name":"a","ph":"i","ts":1.5,"pid":1,"tid":1}\n')
    with pytest.raises(ExportError, match="missing integer 'dur'"):
        validate_trace_jsonl(
            '{"name":"a","ph":"X","ts":1,"pid":1,"tid":1}\n')
    with pytest.raises(ExportError, match="'args' must be an object"):
        validate_trace_jsonl(
            '{"name":"a","ph":"i","ts":1,"pid":1,"tid":1,"args":[]}\n')


def test_writers_create_parent_directories(tmp_path):
    registry = populated_registry()
    metrics_path = write_metrics_file(
        tmp_path / "deep" / "dir" / "metrics.prom", registry)
    assert validate_prometheus_file(metrics_path)
    trace_path = write_trace_file(
        tmp_path / "other" / "trace.jsonl",
        [{"name": "a", "ph": "i", "ts": 1, "pid": 1, "tid": 1}])
    assert validate_trace_file(trace_path) == 1
