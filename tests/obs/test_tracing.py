"""Tracer spans/events and the module-level active-context plumbing."""

import os

import pytest

from repro import obs
from repro.obs.tracing import Tracer


def test_span_records_a_complete_event():
    tracer = Tracer()
    with tracer.span("golden_build", workload="sha"):
        pass
    (event,) = tracer.events()
    assert event["name"] == "golden_build"
    assert event["ph"] == "X"
    assert event["pid"] == os.getpid()
    assert isinstance(event["ts"], int) and isinstance(event["dur"], int)
    assert event["dur"] >= 0
    assert event["args"] == {"workload": "sha"}


def test_span_without_args_omits_the_args_key():
    tracer = Tracer()
    with tracer.span("merge"):
        pass
    assert "args" not in tracer.events()[0]


def test_span_records_even_when_the_body_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("shard", shard_id="s0"):
            raise RuntimeError("boom")
    assert len(tracer) == 1
    assert tracer.events()[0]["name"] == "shard"


def test_nested_spans_record_inner_first():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    assert [event["name"] for event in tracer.events()] == ["inner", "outer"]


def test_instant_event_shape():
    tracer = Tracer()
    tracer.instant("checkpoint", cycle=100)
    (event,) = tracer.events()
    assert event["ph"] == "i"
    assert event["s"] == "p"
    assert event["args"] == {"cycle": 100}


def test_drain_clears_and_absorb_extends():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    drained = tracer.drain()
    assert [e["name"] for e in drained] == ["a"]
    assert len(tracer) == 0
    tracer.absorb(drained)
    tracer.absorb(None)  # tolerated no-op
    assert [e["name"] for e in tracer.events()] == ["a"]


def test_module_span_is_a_noop_without_an_active_context():
    assert obs.active() is None
    with obs.span("nothing", key="value"):
        pass  # must not raise, must not record anywhere
    assert obs.active() is None


def test_observe_activates_and_restores():
    assert obs.active() is None
    with obs.observe() as ctx:
        assert obs.active() is ctx
        assert ctx.role == "main"
        with obs.span("campaign", run_id="r1"):
            pass
        with obs.observe(role="worker") as inner:
            assert obs.active() is inner
            assert inner.role == "worker"
        assert obs.active() is ctx
    assert obs.active() is None
    assert [e["name"] for e in ctx.tracer.events()] == ["campaign"]


def test_context_finalize_sets_derived_gauges():
    with obs.observe() as ctx:
        ctx.injection_done("Masked")
        ctx.injection_done("SDC")
        ctx.cache_event("hit")
        ctx.cache_event("miss")
        ctx.finalize(run_id="abc123")
    registry = ctx.registry
    assert registry.total("repro_injections_total") == 2.0
    assert registry.value("repro_fault_classifications_total",
                          effect="SDC") == 1.0
    assert registry.value("repro_faults_per_second", run_id="abc123") > 0
    assert registry.value("repro_artifact_cache_hit_ratio") == 0.5


def test_finalize_without_lookups_reports_sentinel_ratio():
    with obs.observe() as ctx:
        ctx.finalize()
    assert ctx.registry.value("repro_artifact_cache_hit_ratio") == -1.0
    assert ctx.registry.value("repro_faults_per_second",
                              run_id="unidentified") == 0.0


def test_cache_event_rejects_unknown_kind():
    from repro.obs import MetricsError

    with obs.observe() as ctx:
        with pytest.raises(MetricsError, match="unknown cache event"):
            ctx.cache_event("borrow")


def test_worker_payload_round_trip_merges_into_coordinator():
    with obs.observe(role="worker") as worker:
        worker.injection_done("Masked")
        worker.cache_event("hit")
        with worker.span("shard", shard_id="s0"):
            pass
        payload = worker.drain_payload()
    assert len(worker.tracer) == 0, "drain must clear the worker buffer"

    with obs.observe() as coordinator:
        coordinator.injection_done("SDC")
        coordinator.absorb_payload(payload)
        coordinator.absorb_payload(None)  # tolerated no-op
    registry = coordinator.registry
    assert registry.total("repro_injections_total") == 2.0
    assert registry.value("repro_artifact_cache_hits_total",
                          role="worker") == 1.0
    assert [e["name"] for e in coordinator.tracer.events()] == ["shard"]


def test_pool_and_shard_instrumentation_methods():
    """Covered directly: in real runs several of these fire only inside
    pool worker processes, which per-process coverage cannot see."""
    with obs.observe() as ctx:
        ctx.queue_depth(4)
        ctx.shard_executed(0.2)
        ctx.shard_executed()  # wall time unknown: count only
        ctx.shards_reused(0)  # no-op, not a zero-valued sample
        ctx.shards_reused(2)
        ctx.checkpoint_restore(0)   # pooled cold start: no cycles saved
        ctx.checkpoint_restore(50)
        ctx.journal_append()
        ctx.journal_repair()
        ctx.golden_build()
        ctx.campaign_done()
        ctx.campaign_from_store()
    registry = ctx.registry
    assert registry.value("repro_pool_queue_depth") == 4.0
    assert registry.total("repro_shards_executed_total") == 2.0
    assert registry.histogram_stats("repro_shard_wall_seconds") == (0.2, 1)
    assert registry.total("repro_shards_reused_total") == 2.0
    assert registry.total("repro_checkpoint_restores_total") == 2.0
    assert registry.total("repro_checkpoint_cycles_fast_forwarded_total") == 50.0
    assert registry.total("repro_journal_appends_total") == 1.0
    assert registry.total("repro_journal_repairs_total") == 1.0
    assert registry.total("repro_golden_builds_total") == 1.0
    assert registry.total("repro_campaigns_total") == 1.0
    assert registry.total("repro_campaigns_from_store_total") == 1.0
