"""Delta snapshots: composition exactness, thinning, payload, pooled restore.

The timeline stores one full base state plus per-checkpoint deltas built
from the components' dirty sets.  Everything here checks the same
invariant from different angles: composing the deltas must reproduce
``capture_state`` bit for bit, under thinning, serialization and pooled
partial restores alike.
"""

from __future__ import annotations

import pickle

import pytest

from repro.testing import build_call_program, build_loop_program, small_config
from repro.uarch.checkpoint import (
    CheckpointTimeline,
    DeltaState,
    capture_state,
    compose_state,
    restore_state,
)
from repro.uarch.pipeline import OutOfOrderCpu
from repro.uarch.structures import TargetStructure

CONFIG = small_config()


def _reference_states(program, cycles, record_reads=True):
    """Full capture_state snapshots of an untouched run at ``cycles``."""
    cpu = OutOfOrderCpu(program, CONFIG, record_reads=record_reads)
    captured = {}

    def hook(inner):
        if inner.cycle in cycles:
            captured[inner.cycle] = capture_state(inner)
        return None

    cpu.run(cycle_hook=hook)
    return captured


@pytest.mark.parametrize("build", [
    lambda: build_loop_program(40),
    lambda: build_call_program(40),
])
def test_composed_states_match_full_captures(build):
    program = build()
    timeline = CheckpointTimeline(interval=16, max_checkpoints=64)
    cpu = OutOfOrderCpu(program, CONFIG, record_reads=True)
    cpu.run(cycle_hook=timeline.observe)
    assert len(timeline) > 2, "run too short to exercise deltas"
    # All records after the base must actually be deltas.
    assert all(isinstance(r, DeltaState) for r in timeline._records[1:])

    reference = _reference_states(build(), set(timeline.cycles))
    for cycle, state in zip(timeline.cycles, timeline.states()):
        assert state == reference[cycle], f"divergence at cycle {cycle}"


def test_thinning_merges_deltas_exactly():
    program = build_loop_program(40)
    # A tiny bound forces repeated thinning, including dropped-tail cases.
    timeline = CheckpointTimeline(interval=8, max_checkpoints=4)
    cpu = OutOfOrderCpu(program, CONFIG, record_reads=True)
    cpu.run(cycle_hook=timeline.observe)
    assert timeline.interval > 8, "thinning never triggered"

    reference = _reference_states(build_loop_program(40), set(timeline.cycles))
    for cycle, state in zip(timeline.cycles, timeline.states()):
        assert state == reference[cycle], f"divergence at cycle {cycle}"


def test_nearest_returns_one_identity_per_checkpoint():
    program = build_loop_program()
    timeline = CheckpointTimeline(interval=32, max_checkpoints=16)
    OutOfOrderCpu(program, CONFIG, record_reads=True).run(
        cycle_hook=timeline.observe)
    cycle = timeline.cycles[-1]
    assert timeline.nearest(cycle) is timeline.nearest(cycle + 5), (
        "batch scheduling and pooled restores key on state identity"
    )


def test_payload_round_trip_and_sparsity():
    program = build_loop_program()
    timeline = CheckpointTimeline(interval=32, max_checkpoints=16)
    OutOfOrderCpu(program, CONFIG, record_reads=True).run(
        cycle_hook=timeline.observe)

    payload = timeline.to_payload()
    back = CheckpointTimeline.from_payload(payload)
    assert back.interval == timeline.interval
    assert back.cycles == timeline.cycles
    assert back.states() == timeline.states()

    # The base encoding omits default-valued (untouched, invalid) cache
    # lines; the small loop program cannot have touched the whole L1D.
    _, _, _, (base_payload, deltas) = payload
    field_names = tuple(
        type(timeline.states()[0]).__dataclass_fields__
    )
    num_lines, line_bytes, sparse_lines, _, _ = (
        dict(zip(field_names, base_payload))["dcache"]
    )
    assert len(sparse_lines) < num_lines
    assert line_bytes == CONFIG.cache_line_bytes

    # And the whole point: the delta payload is far smaller than storing
    # every checkpoint in full.
    full_states = timeline.states()
    full_bytes = len(pickle.dumps(full_states, protocol=pickle.HIGHEST_PROTOCOL))
    delta_bytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    assert delta_bytes * 2 < full_bytes


def test_compose_is_incremental():
    """compose_state applied record by record equals the memoised path."""
    program = build_loop_program()
    timeline = CheckpointTimeline(interval=64, max_checkpoints=32)
    OutOfOrderCpu(program, CONFIG, record_reads=True).run(
        cycle_hook=timeline.observe)
    state = timeline._records[0]
    for record in timeline._records[1:]:
        state = compose_state(state, record)
    assert state == timeline.states()[-1]


def test_repeated_partial_restore_is_exact():
    """Restoring the same state object repeatedly uses the dirty-set fast
    path and must stay bit-identical to a fresh construction."""
    program = build_loop_program()
    fresh = OutOfOrderCpu(program, CONFIG)
    initial = capture_state(fresh)

    pooled = OutOfOrderCpu(program, CONFIG)
    reference = OutOfOrderCpu(program, CONFIG).run()
    results = []
    for _ in range(3):
        restore_state(pooled, initial)
        assert capture_state(pooled) == initial
        results.append(pooled.run())
    for result in results:
        assert result == reference


def test_partial_restore_with_faults_is_exact():
    """A faulty run dirties arbitrary state; the next pooled restore must
    erase every trace of it, including injected flips in quiet cells."""
    program = build_loop_program()
    pooled = OutOfOrderCpu(program, CONFIG)
    initial = capture_state(pooled)

    plans = [
        {10: [(TargetStructure.RF, 20, 7)]},
        {25: [(TargetStructure.L1D, 5, 3)]},
        {40: [(TargetStructure.SQ, 3, 60)]},
        {},
    ]
    pooled_results = []
    for plan in plans:
        pooled.fault_plan = plan
        restore_state(pooled, initial)
        pooled_results.append(pooled.run())

    for plan, pooled_result in zip(plans, pooled_results):
        fresh = OutOfOrderCpu(program, CONFIG, fault_plan=plan)
        assert fresh.run() == pooled_result
