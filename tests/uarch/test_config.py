"""Tests for the microarchitectural configuration (Table 1)."""

import pytest

from repro.uarch.config import (
    L1D_SIZES_KB,
    MicroarchConfig,
    REGISTER_FILE_SIZES,
    SPEC_CONFIG,
    STORE_QUEUE_SIZES,
)
from repro.uarch.structures import (
    TargetStructure,
    structure_config_label,
    structure_geometry,
)


def test_defaults_match_table_1():
    config = MicroarchConfig()
    assert config.num_phys_int_regs == 256
    assert config.issue_queue_entries == 32
    assert config.rob_entries == 100
    assert config.load_queue_entries == 64
    assert config.store_queue_entries == 64
    assert config.l1i_size_kb == 32
    assert config.l2_size_kb == 1024
    assert config.btb_entries == 4096
    assert config.cache_line_bytes == 64


def test_paper_sweep_sizes():
    assert REGISTER_FILE_SIZES == (256, 128, 64)
    assert STORE_QUEUE_SIZES == (64, 32, 16)
    assert L1D_SIZES_KB == (64, 32, 16)


def test_with_register_file_store_queue_l1d_are_pure():
    base = MicroarchConfig()
    rf = base.with_register_file(64)
    sq = base.with_store_queue(16)
    l1d = base.with_l1d(64)
    assert base.num_phys_int_regs == 256
    assert rf.num_phys_int_regs == 64
    assert sq.load_queue_entries == sq.store_queue_entries == 16
    assert l1d.l1d_size_kb == 64


def test_spec_config_matches_section_4423():
    assert SPEC_CONFIG.num_phys_int_regs == 128
    assert SPEC_CONFIG.store_queue_entries == 16
    assert SPEC_CONFIG.l1d_size_kb == 32


def test_derived_cache_geometry():
    config = MicroarchConfig().with_l1d(16)
    assert config.l1d_num_lines == 16 * 1024 // 64
    assert config.l1d_num_sets == config.l1d_num_lines // config.l1d_assoc


def test_describe_contains_table1_rows():
    table = MicroarchConfig().describe()
    assert table["Pipeline"] == "OoO"
    assert "Tournament" in table["Branch Predictor"]
    assert "4096" in table["Branch Target Buffer"]


def test_invalid_configurations_rejected():
    with pytest.raises(ValueError):
        MicroarchConfig(num_phys_int_regs=8)


def test_structure_geometry_entries():
    config = MicroarchConfig().with_register_file(64).with_store_queue(16).with_l1d(16)
    assert structure_geometry(TargetStructure.RF, config).num_entries == 64
    assert structure_geometry(TargetStructure.SQ, config).num_entries == 16
    # 16KB / 64B = 256 lines, 8 words per line.
    assert structure_geometry(TargetStructure.L1D, config).num_entries == 256 * 8
    assert structure_geometry(TargetStructure.RF, config).total_bits == 64 * 64


def test_structure_geometry_flatten_round_trip():
    config = MicroarchConfig()
    geometry = structure_geometry(TargetStructure.RF, config)
    for entry, bit in ((0, 0), (10, 63), (255, 1)):
        assert geometry.unflatten(geometry.flatten(entry, bit)) == (entry, bit)
    with pytest.raises(ValueError):
        geometry.flatten(256, 0)
    with pytest.raises(ValueError):
        geometry.flatten(0, 64)


def test_structure_config_labels_match_paper_axis_labels():
    config = MicroarchConfig().with_register_file(128).with_store_queue(32).with_l1d(64)
    assert structure_config_label(TargetStructure.RF, config) == "128regs"
    assert structure_config_label(TargetStructure.SQ, config) == "32entries"
    assert structure_config_label(TargetStructure.L1D, config) == "64KB"
