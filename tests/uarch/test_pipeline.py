"""Tests for the out-of-order pipeline: architectural equivalence and behaviour."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.functional import run_functional
from repro.isa.memory import MEM_LIMIT
from repro.isa.registers import Reg
from repro.uarch.config import MicroarchConfig
from repro.uarch.pipeline import OutOfOrderCpu, TerminationKind
from repro.uarch.structures import TargetStructure
from repro.uarch.trace import AccessTracer
from repro.workloads import MIBENCH_NAMES, SPEC_NAMES, get_workload

from tests.conftest import build_call_program, build_loop_program


def test_loop_program_matches_functional(loop_program):
    functional = run_functional(loop_program)
    result = OutOfOrderCpu(loop_program, MicroarchConfig()).run()
    assert result.termination is TerminationKind.HALTED
    assert result.output == functional.output
    assert result.committed_instructions == functional.instructions
    assert result.exceptions == functional.exceptions


def test_call_program_matches_functional(call_program):
    functional = run_functional(call_program)
    result = OutOfOrderCpu(call_program, MicroarchConfig()).run()
    assert result.output == functional.output
    assert result.committed_instructions == functional.instructions


@pytest.mark.parametrize("name", list(MIBENCH_NAMES) + list(SPEC_NAMES))
def test_every_workload_matches_functional_at_test_scale(name, small_config):
    program = get_workload(name).build_for_test()
    functional = run_functional(program)
    assert functional.halted and not functional.crashed
    result = OutOfOrderCpu(program, small_config).run()
    assert result.termination is TerminationKind.HALTED
    assert result.output == functional.output
    assert result.committed_instructions == functional.instructions
    assert result.exceptions == functional.exceptions


def test_small_structures_still_produce_correct_results(loop_program):
    config = MicroarchConfig().with_register_file(24).with_store_queue(2).with_l1d(16)
    functional = run_functional(loop_program)
    result = OutOfOrderCpu(loop_program, config).run()
    assert result.output == functional.output


def test_deterministic_across_runs(loop_program):
    first = OutOfOrderCpu(loop_program, MicroarchConfig()).run()
    second = OutOfOrderCpu(loop_program, MicroarchConfig()).run()
    assert first.cycles == second.cycles
    assert first.output == second.output
    assert first.stats.branch_mispredicts == second.stats.branch_mispredicts


def test_branch_mispredictions_and_squashes_occur():
    """A data-dependent branch pattern must exercise squash/recovery."""
    b = ProgramBuilder("branchy")
    values = b.alloc_words("values", [(i * 37) % 7 for i in range(64)])
    b.movi(Reg.RDI, values)
    b.movi(Reg.RAX, 0)
    b.movi(Reg.RCX, 0)
    b.label("loop")
    b.load(Reg.RDX, Reg.RDI, 0)
    b.bge(Reg.RDX, 4, "skip")
    b.add(Reg.RAX, Reg.RAX, Reg.RDX)
    b.label("skip")
    b.add(Reg.RDI, Reg.RDI, 8)
    b.add(Reg.RCX, Reg.RCX, 1)
    b.blt(Reg.RCX, 64, "loop")
    b.out(Reg.RAX)
    b.halt()
    program = b.build()
    functional = run_functional(program)
    cpu = OutOfOrderCpu(program, MicroarchConfig())
    result = cpu.run()
    assert result.output == functional.output
    assert result.stats.branch_mispredicts > 0
    assert result.stats.squashes > 0
    assert result.stats.squashed_uops > 0


def test_store_forwarding_happens_for_call_return(call_program):
    result = OutOfOrderCpu(call_program, MicroarchConfig()).run()
    assert result.stats.store_forwards > 0


def test_timeout_termination_on_infinite_loop():
    b = ProgramBuilder("spin")
    b.label("spin")
    b.jmp("spin")
    b.halt()
    result = OutOfOrderCpu(b.build(), MicroarchConfig()).run(max_cycles=2000)
    assert result.termination in (TerminationKind.TIMEOUT, TerminationKind.DEADLOCK)


def test_crash_on_wild_store():
    b = ProgramBuilder("wildstore")
    b.movi(Reg.RAX, MEM_LIMIT + 1024)
    b.store(Reg.RAX, Reg.RAX, 0)
    b.halt()
    result = OutOfOrderCpu(b.build(), MicroarchConfig()).run()
    assert result.termination is TerminationKind.CRASH
    assert "write" in result.crash_reason


def test_crash_on_division_by_zero():
    b = ProgramBuilder("div0")
    b.movi(Reg.RAX, 5)
    b.movi(Reg.RBX, 0)
    b.div(Reg.RAX, Reg.RAX, Reg.RBX)
    b.out(Reg.RAX)
    b.halt()
    result = OutOfOrderCpu(b.build(), MicroarchConfig()).run()
    assert result.termination is TerminationKind.CRASH


def test_wrong_path_faulting_load_does_not_crash():
    """A load on a mispredicted path to a wild address must be squashed silently."""
    b = ProgramBuilder("wrongpath")
    flags = b.alloc_words("flags", [0] * 32)
    b.movi(Reg.RDI, flags)
    b.movi(Reg.R12, MEM_LIMIT + 4096)   # wild pointer used only on the untaken path
    b.movi(Reg.RCX, 0)
    b.movi(Reg.RAX, 0)
    b.label("loop")
    b.load(Reg.RDX, Reg.RDI, 0)
    b.beq(Reg.RDX, 0, "safe")           # always taken (all flags are zero)
    b.load(Reg.RAX, Reg.R12, 0)         # would crash if architecturally executed
    b.label("safe")
    b.add(Reg.RDI, Reg.RDI, 8)
    b.add(Reg.RCX, Reg.RCX, 1)
    b.blt(Reg.RCX, 32, "loop")
    b.out(Reg.RAX)
    b.halt()
    program = b.build()
    result = OutOfOrderCpu(program, MicroarchConfig()).run()
    assert result.termination is TerminationKind.HALTED
    assert result.output == [0]


def test_demand_exceptions_counted_once_per_committed_access():
    b = ProgramBuilder("demand")
    heap = b.alloc_words("heap", [5])
    b.movi(Reg.RDI, heap + 8192)
    b.load(Reg.RAX, Reg.RDI, 0)
    b.store(Reg.RAX, Reg.RDI, 64)
    b.out(Reg.RAX)
    b.halt()
    program = b.build()
    functional = run_functional(program)
    result = OutOfOrderCpu(program, MicroarchConfig()).run()
    assert functional.exceptions == 2
    assert result.exceptions == 2


def test_max_instructions_stops_at_interval_end(loop_program):
    result = OutOfOrderCpu(loop_program, MicroarchConfig()).run(max_instructions=50)
    assert result.termination is TerminationKind.INTERVAL_END
    assert result.committed_instructions >= 50


def test_commit_log_recorded_only_when_tracing(loop_program):
    traced = OutOfOrderCpu(loop_program, MicroarchConfig(), tracer=AccessTracer(enabled=True))
    traced_result = traced.run()
    assert len(traced.commit_log) == traced_result.committed_instructions
    untraced = OutOfOrderCpu(loop_program, MicroarchConfig())
    untraced.run()
    assert untraced.commit_log == []


def test_fault_plan_flip_changes_architectural_result(loop_program):
    """Flipping a register bit right before a read should usually corrupt output."""
    config = MicroarchConfig().with_register_file(64)
    golden = OutOfOrderCpu(loop_program, config).run()
    # Flip a low bit of many physical registers mid-run; renaming cycles
    # through the free list, so at least one of them must hold a live value
    # and corrupt the output (or crash/timeout the run).  Most flips are
    # masked — that asymmetry is exactly what MeRLiN exploits.
    differences = 0
    masked = 0
    for phys in range(16, 64, 2):
        for cycle in (30, 80):
            fault_plan = {cycle: [(TargetStructure.RF, phys, 0)]}
            cpu = OutOfOrderCpu(loop_program, config, fault_plan=fault_plan)
            result = cpu.run(max_cycles=golden.cycles * 3)
            if result.output != golden.output or result.termination is not TerminationKind.HALTED:
                differences += 1
            else:
                masked += 1
    assert differences >= 1
    assert masked > differences


def test_ipc_within_sane_bounds(loop_program):
    result = OutOfOrderCpu(loop_program, MicroarchConfig()).run()
    assert 0.1 < result.stats.ipc <= 8.0


def test_stats_dictionary_contains_derived_rates(loop_program):
    result = OutOfOrderCpu(loop_program, MicroarchConfig()).run()
    stats = result.stats.as_dict()
    assert "ipc" in stats and "l1d_miss_rate" in stats
    assert stats["cycles"] == result.cycles
    assert isinstance(result.stats.summary(), str)
