"""Tests for structure access tracing during profiling runs."""

from repro.uarch.config import MicroarchConfig
from repro.uarch.pipeline import OutOfOrderCpu
from repro.uarch.structures import TargetStructure
from repro.uarch.trace import AccessEvent, AccessKind, AccessTracer, WRITEBACK_RIP


def test_disabled_tracer_records_nothing():
    tracer = AccessTracer(enabled=False)
    tracer.record_rf(1, 10, AccessKind.WRITE)
    tracer.record_sq(1, 10, AccessKind.READ, 5, 0)
    tracer.record_l1d(1, 10, AccessKind.WRITE)
    assert all(count == (0, 0) for count in tracer.counts().values())


def test_events_by_entry_sorted_by_cycle():
    tracer = AccessTracer(enabled=True)
    tracer.record_rf(3, 50, AccessKind.READ, 7, 0)
    tracer.record_rf(3, 10, AccessKind.WRITE)
    tracer.record_rf(4, 20, AccessKind.WRITE)
    grouped = tracer.events_by_entry(TargetStructure.RF)
    assert [event.cycle for event in grouped[3]] == [10, 50]
    assert set(grouped) == {3, 4}


def test_counts_split_reads_and_writes():
    tracer = AccessTracer(enabled=True)
    tracer.record_sq(0, 1, AccessKind.WRITE)
    tracer.record_sq(0, 2, AccessKind.READ, 3, 1)
    tracer.record_sq(1, 3, AccessKind.READ, 3, 1)
    writes, reads = tracer.counts()[TargetStructure.SQ]
    assert (writes, reads) == (1, 2)


def test_clear_drops_events():
    tracer = AccessTracer(enabled=True)
    tracer.record_rf(0, 0, AccessKind.WRITE)
    tracer.clear()
    assert tracer.events(TargetStructure.RF) == []


def test_generic_record_respects_enabled_flag():
    event = AccessEvent(TargetStructure.L1D, 4, 12, AccessKind.WRITE)
    disabled = AccessTracer(enabled=False)
    disabled.record(event)
    assert disabled.events(TargetStructure.L1D) == []

    enabled = AccessTracer(enabled=True)
    enabled.record(event)
    assert enabled.events(TargetStructure.L1D) == [event]


def test_default_rip_is_writeback_sentinel():
    event = AccessEvent(TargetStructure.L1D, 0, 0, AccessKind.READ)
    assert event.rip == WRITEBACK_RIP
    assert event.upc == 0


def test_empty_tracer_counts_and_grouping():
    tracer = AccessTracer(enabled=True)
    assert tracer.counts() == {s: (0, 0) for s in TargetStructure}
    assert tracer.events_by_entry(TargetStructure.SQ) == {}


def test_access_event_properties():
    event = AccessEvent(TargetStructure.RF, 1, 5, AccessKind.READ, 10, 2)
    assert event.is_read and not event.is_write
    assert event.rip == 10 and event.upc == 2


def test_profiling_run_produces_reads_and_writes_for_all_structures(loop_program, small_config):
    tracer = AccessTracer(enabled=True)
    OutOfOrderCpu(loop_program, small_config, tracer=tracer).run()
    counts = tracer.counts()
    for structure in TargetStructure:
        writes, reads = counts[structure]
        assert writes > 0, f"no writes traced for {structure}"
        assert reads > 0, f"no reads traced for {structure}"


def test_rf_reads_carry_rip_and_upc(loop_program, small_config):
    tracer = AccessTracer(enabled=True)
    OutOfOrderCpu(loop_program, small_config, tracer=tracer).run()
    reads = [e for e in tracer.events(TargetStructure.RF) if e.is_read]
    assert all(e.rip >= 0 for e in reads)
    assert all(loop_program.in_range(e.rip) for e in reads)
    assert any(e.upc > 0 for e in tracer.events(TargetStructure.SQ) if e.is_read)


def test_sq_reads_only_from_committed_stores_or_forwards(loop_program, small_config):
    tracer = AccessTracer(enabled=True)
    OutOfOrderCpu(loop_program, small_config, tracer=tracer).run()
    sq_reads = [e for e in tracer.events(TargetStructure.SQ) if e.is_read]
    # Every SQ read must be attributed to a store or load instruction of the program.
    assert sq_reads
    for event in sq_reads:
        assert loop_program.in_range(event.rip)


def test_wrong_path_reads_are_not_traced(small_config):
    """Squashed reads never reach the trace (Figure 3 semantics)."""
    from repro.isa.builder import ProgramBuilder
    from repro.isa.registers import Reg

    b = ProgramBuilder("wrongpath_trace")
    data = b.alloc_words("data", [0] * 16)
    b.movi(Reg.RDI, data)
    b.movi(Reg.R13, 0xABCD)     # value only read on the wrong path
    b.movi(Reg.RCX, 0)
    b.movi(Reg.RAX, 0)
    b.label("loop")
    b.load(Reg.RDX, Reg.RDI, 0)
    b.beq(Reg.RDX, 0, "taken")
    b.add(Reg.RAX, Reg.RAX, Reg.R13)   # wrong path: reads R13
    b.label("taken")
    b.add(Reg.RDI, Reg.RDI, 8)
    b.add(Reg.RCX, Reg.RCX, 1)
    b.blt(Reg.RCX, 16, "loop")
    b.out(Reg.RAX)
    b.halt()
    program = b.build()
    tracer = AccessTracer(enabled=True)
    cpu = OutOfOrderCpu(program, small_config, tracer=tracer)
    result = cpu.run()
    assert result.output == [0]
    wrong_path_rip = 6  # the add that reads R13
    rf_reads = [e for e in tracer.events(TargetStructure.RF) if e.is_read]
    assert all(e.rip != wrong_path_rip for e in rf_reads)
