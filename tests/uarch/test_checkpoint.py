"""Checkpoint subsystem: snapshot/restore exactness, timeline, early exit."""

from __future__ import annotations

import pickle

import pytest

from repro.faults.model import FaultSpec
from repro.testing import build_call_program, build_loop_program, small_config
from repro.uarch.checkpoint import (
    CheckpointTimeline,
    capture_state,
    clone_result,
    make_reconvergence_hook,
    restore_state,
)
from repro.uarch.config import MicroarchConfig
from repro.uarch.pipeline import OutOfOrderCpu
from repro.uarch.structures import TargetStructure


CONFIG = small_config()


def fresh_cpu(program=None, config=None, **kwargs):
    return OutOfOrderCpu(program or build_loop_program(), config or CONFIG, **kwargs)


# ----------------------------------------------------------------------
# Whole-CPU snapshot/restore
# ----------------------------------------------------------------------
def test_snapshot_restore_round_trip_is_exact():
    cpu = fresh_cpu()
    states = {}

    def hook(inner):
        if inner.cycle in (0, 37, 120):
            states[inner.cycle] = capture_state(inner)
        return None

    reference = cpu.run(cycle_hook=hook)
    assert sorted(states) == [0, 37, 120]

    for cycle, state in states.items():
        restored = fresh_cpu()
        restore_state(restored, state)
        # Snapshotting the restored CPU reproduces the state exactly...
        assert capture_state(restored) == state
        # ...and resuming it reproduces the reference run bit for bit.
        assert restored.run() == reference


def test_snapshot_method_aliases_module_functions():
    cpu = fresh_cpu()
    for _ in range(50):
        cpu._step()
    state = cpu.snapshot()
    other = fresh_cpu()
    other.restore(state)
    assert other.snapshot() == state
    assert other.cycle == cpu.cycle


def test_restored_cpu_is_independent_of_the_source():
    cpu = fresh_cpu()
    for _ in range(60):
        cpu._step()
    state = capture_state(cpu)
    first = fresh_cpu()
    restore_state(first, state)
    first.run()
    # Running one restored CPU must not corrupt the checkpoint.
    second = fresh_cpu()
    restore_state(second, state)
    assert capture_state(second) == state


def test_mid_run_restore_preserves_pending_fault_plan():
    program = build_loop_program()
    golden_cpu = fresh_cpu(program)
    state = {}

    def hook(inner):
        if inner.cycle == 40 and not state:
            state["at40"] = capture_state(inner)
        return None

    golden = golden_cpu.run(cycle_hook=hook)

    flip = (TargetStructure.RF, 3, 60)
    cold = fresh_cpu(program, fault_plan={90: [flip]}).run()
    warm_cpu = fresh_cpu(program, fault_plan={90: [flip]})
    restore_state(warm_cpu, state["at40"])
    warm = warm_cpu.run()
    assert warm == cold
    # Sanity: the flip plan was actually exercised in a live machine.
    assert golden.completed and cold.cycles > 90


def test_state_equality_detects_single_bit_difference():
    cpu = fresh_cpu()
    for _ in range(80):
        cpu._step()
    before = capture_state(cpu)
    cpu.prf.flip_bit(5, 17)
    after = capture_state(cpu)
    assert before != after
    cpu.prf.flip_bit(5, 17)
    assert capture_state(cpu) == before


def test_snapshots_are_picklable():
    cpu = fresh_cpu()
    for _ in range(70):
        cpu._step()
    state = capture_state(cpu)
    revived = pickle.loads(pickle.dumps(state))
    restored = fresh_cpu()
    restore_state(restored, revived)
    assert capture_state(restored) == state


# ----------------------------------------------------------------------
# Component hooks
# ----------------------------------------------------------------------
def test_component_snapshots_round_trip_mid_run():
    cpu = fresh_cpu(build_call_program())
    for _ in range(45):
        cpu._step()
    components = [
        cpu.memory, cpu.prf, cpu.free_list, cpu.store_queue, cpu.load_queue,
        cpu.dcache, cpu.icache, cpu.branch_unit, cpu.stats,
    ]
    states = [component.snapshot() for component in components]
    for component, state in zip(components, states):
        component.restore(state)
        assert component.snapshot() == state


def test_free_list_snapshot_preserves_allocation_order():
    cpu = fresh_cpu()
    for _ in range(30):
        cpu._step()
    state = cpu.free_list.snapshot()
    expected = [cpu.free_list.allocate() for _ in range(4)]
    cpu.free_list.restore(state)
    assert [cpu.free_list.allocate() for _ in range(4)] == expected


def test_store_queue_snapshot_keeps_free_slot_latches():
    cpu = fresh_cpu()
    for _ in range(100):
        cpu._step()
    cpu.store_queue.flip_bit(7, 13)
    state = cpu.store_queue.snapshot()
    flipped = cpu.store_queue.slots[7].data
    cpu.store_queue.flip_bit(7, 13)
    cpu.store_queue.restore(state)
    assert cpu.store_queue.slots[7].data == flipped


def test_dcache_snapshot_keeps_invalid_line_data():
    cpu = fresh_cpu()
    for _ in range(50):
        cpu._step()
    # Find an invalid line, poison its (physically persistent) data array.
    target = None
    for set_index, ways in enumerate(cpu.dcache.lines):
        for way, line in enumerate(ways):
            if not line.valid:
                target = (set_index, way, line)
                break
        if target:
            break
    assert target is not None, "expected at least one invalid line"
    _, _, line = target
    line.data[3] ^= 0xFF
    state = cpu.dcache.snapshot()
    poisoned = bytes(line.data)
    line.data[3] ^= 0xFF
    cpu.dcache.restore(state)
    assert bytes(line.data) == poisoned


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
def test_timeline_captures_at_interval_boundaries():
    timeline = CheckpointTimeline(interval=32, max_checkpoints=64)
    cpu = fresh_cpu()
    cpu.run(cycle_hook=timeline.observe)
    assert len(timeline) > 0
    assert all(cycle % 32 == 0 for cycle in timeline.cycles)
    assert timeline.cycles == sorted(timeline.cycles)


def test_timeline_thins_itself_beyond_the_checkpoint_budget():
    timeline = CheckpointTimeline(interval=8, max_checkpoints=4)
    cpu = fresh_cpu()
    cpu.run(cycle_hook=timeline.observe)
    assert len(timeline) <= 4
    assert timeline.interval > 8
    assert all(cycle % timeline.interval == 0 for cycle in timeline.cycles)


def test_timeline_nearest_and_state_at():
    timeline = CheckpointTimeline(interval=50, max_checkpoints=64)
    cpu = fresh_cpu()
    cpu.run(cycle_hook=timeline.observe)
    assert timeline.nearest(10) is None
    assert timeline.nearest(49) is None
    assert timeline.nearest(50).cycle == 50
    assert timeline.nearest(137).cycle == 100
    assert timeline.state_at(100).cycle == 100
    assert timeline.state_at(101) is None


def test_ensure_checkpoints_is_idempotent_even_when_empty():
    from repro.faults.golden import capture_golden

    golden = capture_golden(build_loop_program(), CONFIG, trace=False)
    # Interval far beyond the run length: the timeline stays empty, but it
    # still counts as captured — repeat calls must not replay the golden
    # run over and over.
    first = golden.ensure_checkpoints(interval=10_000_000)
    assert len(first) == 0
    assert golden.ensure_checkpoints() is first


def test_timeline_rejects_bad_parameters():
    with pytest.raises(ValueError):
        CheckpointTimeline(interval=0)
    with pytest.raises(ValueError):
        CheckpointTimeline(interval=8, max_checkpoints=0)


# ----------------------------------------------------------------------
# Reconvergence early exit
# ----------------------------------------------------------------------
def test_clone_result_is_deep():
    result = fresh_cpu().run()
    clone = clone_result(result)
    assert clone == result
    clone.output.append(999)
    clone.stats.cycles += 1
    assert clone != result


def test_reconvergence_hook_returns_golden_result_for_identical_run():
    timeline = CheckpointTimeline(interval=40, max_checkpoints=64)
    golden = fresh_cpu().run(cycle_hook=timeline.observe)

    never_read = FaultSpec(0, TargetStructure.RF, entry=0, bit=0, cycle=0)
    hook = make_reconvergence_hook(timeline, never_read, golden)
    # A fresh fault-free run IS the golden run: the hook must fire at the
    # first checkpoint after the (trivial) fault cycle.
    early = fresh_cpu().run(cycle_hook=hook)
    assert early == golden
    assert early is not golden
    assert early.output is not golden.output


def test_reconvergence_hook_never_fires_for_diverged_run():
    timeline = CheckpointTimeline(interval=40, max_checkpoints=64)
    golden = fresh_cpu().run(cycle_hook=timeline.observe)

    # Low physical register: very likely live in the loop.
    fault = FaultSpec(0, TargetStructure.RF, entry=2, bit=0, cycle=120)

    fired = []
    hook = make_reconvergence_hook(timeline, fault, golden)

    def spying(cpu):
        result = hook(cpu)
        if result is not None:
            fired.append(cpu.cycle)
        return result

    faulty = fresh_cpu(fault_plan=fault.plan()).run(cycle_hook=spying)
    if faulty.output != golden.output:
        assert not fired, "diverged run must never adopt the golden result"
