"""Tests for the tournament predictor and the BTB."""

from repro.uarch.branch import BranchTargetBuffer, BranchUnit, TournamentPredictor
from repro.uarch.config import MicroarchConfig


def test_predictor_learns_always_taken_branch():
    predictor = TournamentPredictor(MicroarchConfig())
    rip = 12
    for _ in range(8):
        history = predictor.snapshot_history()
        predictor.update(rip, True, history)
    assert predictor.predict(rip) is True


def test_predictor_learns_never_taken_branch():
    predictor = TournamentPredictor(MicroarchConfig())
    rip = 40
    for _ in range(8):
        history = predictor.snapshot_history()
        predictor.update(rip, False, history)
    assert predictor.predict(rip) is False


def test_predictor_history_snapshot_restore():
    predictor = TournamentPredictor(MicroarchConfig())
    snapshot = predictor.snapshot_history()
    predictor.speculative_update_history(True)
    predictor.speculative_update_history(True)
    assert predictor.global_history != snapshot
    predictor.restore_history(snapshot)
    assert predictor.global_history == snapshot


def test_predictor_learns_loop_pattern_with_high_accuracy():
    """A loop branch taken 15 times then not taken once should mispredict rarely."""
    predictor = TournamentPredictor(MicroarchConfig())
    rip = 7
    correct = 0
    total = 0
    for _ in range(40):
        for iteration in range(16):
            outcome = iteration != 15
            history = predictor.snapshot_history()
            prediction = predictor.predict(rip)
            predictor.speculative_update_history(prediction)
            predictor.update(rip, outcome, history)
            correct += prediction == outcome
            total += 1
    assert correct / total > 0.85


def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(MicroarchConfig())
    assert btb.lookup(100) is None
    btb.update(100, 7)
    assert btb.lookup(100) == 7


def test_btb_direct_mapped_conflict():
    config = MicroarchConfig()
    btb = BranchTargetBuffer(config)
    rip_a = 5
    rip_b = 5 + config.btb_entries
    btb.update(rip_a, 1)
    btb.update(rip_b, 2)
    assert btb.lookup(rip_a) is None
    assert btb.lookup(rip_b) == 2


def test_branch_unit_direct_jump_uses_static_target():
    unit = BranchUnit(MicroarchConfig())
    target, taken, _ = unit.predict_next(3, is_conditional=False, static_target=9,
                                         is_indirect=False)
    assert target == 9 and taken


def test_branch_unit_indirect_falls_through_on_btb_miss():
    unit = BranchUnit(MicroarchConfig())
    target, _, _ = unit.predict_next(3, is_conditional=False, static_target=None,
                                     is_indirect=True)
    assert target == 4
    unit.btb.update(3, 17)
    target, _, _ = unit.predict_next(3, is_conditional=False, static_target=None,
                                     is_indirect=True)
    assert target == 17


def test_branch_unit_conditional_prediction_returns_history():
    unit = BranchUnit(MicroarchConfig())
    history_before = unit.predictor.snapshot_history()
    _, _, history = unit.predict_next(5, is_conditional=True, static_target=2,
                                      is_indirect=False)
    assert history == history_before
