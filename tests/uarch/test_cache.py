"""Tests for the data-holding L1D, the tag-only caches and write-back behaviour."""

from repro.isa.memory import DATA_BASE, MemoryImage
from repro.uarch.cache import DataCache, InstructionCache, TagOnlyCache
from repro.uarch.config import MicroarchConfig
from repro.uarch.stats import SimStats
from repro.uarch.structures import WORDS_PER_LINE
from repro.uarch.trace import AccessKind, AccessTracer, WRITEBACK_RIP


def _make_cache(size_kb=16, tracer=None):
    config = MicroarchConfig().with_l1d(size_kb)
    memory = MemoryImage(heap_end=DATA_BASE + (1 << 20))
    stats = SimStats()
    return DataCache(config, memory, stats, tracer), memory, stats, config


def test_read_miss_fills_from_memory():
    cache, memory, stats, _ = _make_cache()
    memory.write(DATA_BASE + 8, 1234, 8)
    result = cache.read(DATA_BASE + 8, 8, cycle=0)
    assert result.value == 1234
    assert not result.hit
    assert stats.l1d_misses == 1
    again = cache.read(DATA_BASE + 8, 8, cycle=1)
    assert again.hit
    assert stats.l1d_hits == 1


def test_write_allocates_and_marks_dirty_then_writes_back():
    cache, memory, stats, config = _make_cache()
    address = DATA_BASE
    cache.write(address, 99, 8, cycle=0)
    # Memory still holds the stale value until the line is evicted.
    assert memory.read(address, 8) == 0
    # Touch enough conflicting lines to force the dirty line out.
    stride = config.l1d_num_sets * config.cache_line_bytes
    for way in range(1, config.l1d_assoc + 1):
        cache.read(address + way * stride, 8, cycle=way)
    assert stats.l1d_writebacks == 1
    assert memory.read(address, 8) == 99


def test_flush_dirty_to_memory():
    cache, memory, _, _ = _make_cache()
    cache.write(DATA_BASE + 16, 7, 8, cycle=0)
    cache.flush_dirty_to_memory()
    assert memory.read(DATA_BASE + 16, 8) == 7


def test_partial_write_read_within_line():
    cache, _, _, _ = _make_cache()
    cache.write(DATA_BASE + 3, 0xAB, 1, cycle=0)
    assert cache.read(DATA_BASE + 3, 1, cycle=1).value == 0xAB
    assert cache.read(DATA_BASE, 8, cycle=2).value == 0xAB << 24


def test_entry_index_round_trip():
    cache, _, _, _ = _make_cache()
    for entry in (0, 5, cache.num_entries - 1):
        set_index, way, word = cache.entry_location(entry)
        assert cache.entry_index(set_index, way, word) == entry


def test_flip_bit_changes_read_value():
    cache, _, _, _ = _make_cache()
    result = cache.read(DATA_BASE, 8, cycle=0)
    set_index, _, offset, *_ = 0, 0, 0
    touched = result.touched_entries[0]
    cache.flip_bit(touched, 0)
    assert cache.read(DATA_BASE, 8, cycle=1).value == result.value ^ 1


def test_touched_entries_span_words_for_unaligned_access():
    cache, _, _, _ = _make_cache()
    result = cache.read(DATA_BASE + 6, 4, cycle=0)
    assert len(result.touched_entries) == 2


def test_writeback_records_sentinel_read_events():
    tracer = AccessTracer(enabled=True)
    cache, _, _, config = _make_cache(tracer=tracer)
    cache.write(DATA_BASE, 5, 8, cycle=0)
    stride = config.l1d_num_sets * config.cache_line_bytes
    for way in range(1, config.l1d_assoc + 1):
        cache.read(DATA_BASE + way * stride, 8, cycle=way)
    from repro.uarch.structures import TargetStructure

    events = tracer.events(TargetStructure.L1D)
    wb_reads = [e for e in events if e.is_read and e.rip == WRITEBACK_RIP]
    assert len(wb_reads) == WORDS_PER_LINE


def test_miss_latency_exceeds_hit_latency():
    cache, _, _, config = _make_cache()
    miss = cache.read(DATA_BASE, 8, cycle=0)
    hit = cache.read(DATA_BASE, 8, cycle=1)
    assert miss.latency > hit.latency
    assert hit.latency == config.l1_hit_latency


def test_tag_only_cache_lru_eviction():
    cache = TagOnlyCache(size_kb=1, assoc=2, line_bytes=64)
    # One set has 2 ways; touch three conflicting lines.
    stride = cache.num_sets * 64
    assert cache.access(0) is False
    assert cache.access(stride) is False
    assert cache.access(0) is True
    assert cache.access(2 * stride) is False   # evicts `stride` (LRU)
    assert cache.access(0) is True
    assert cache.access(stride) is False


def test_instruction_cache_latency_only_on_miss():
    config = MicroarchConfig()
    stats = SimStats()
    icache = InstructionCache(config, stats)
    assert icache.fetch_latency(0) > 0
    assert icache.fetch_latency(1) == 0
    assert stats.l1i_misses == 1
    assert stats.l1i_hits == 1
