"""SimStats: counters, derived rates, snapshot/restore, reporting."""

from __future__ import annotations

import pickle

from repro.uarch.stats import STAT_FIELDS, SimStats


def test_fresh_stats_are_all_zero():
    stats = SimStats()
    assert all(getattr(stats, name) == 0 for name in STAT_FIELDS)
    assert stats.ipc == 0.0
    assert stats.branch_mispredict_rate == 0.0
    assert stats.l1d_miss_rate == 0.0


def test_stat_fields_cover_every_counter_in_declaration_order():
    assert STAT_FIELDS == tuple(SimStats.__dataclass_fields__)
    assert STAT_FIELDS[0] == "cycles"
    assert len(STAT_FIELDS) == len(set(STAT_FIELDS))


def test_derived_rates():
    stats = SimStats(cycles=100, committed_instructions=50,
                     branches=10, branch_mispredicts=3,
                     l1d_hits=30, l1d_misses=10)
    assert stats.ipc == 0.5
    assert stats.branch_mispredict_rate == 0.3
    assert stats.l1d_miss_rate == 0.25


def test_snapshot_restore_round_trip():
    stats = SimStats()
    for index, name in enumerate(STAT_FIELDS):
        setattr(stats, name, index * 7 + 1)
    snap = stats.snapshot()
    assert snap == tuple(index * 7 + 1 for index in range(len(STAT_FIELDS)))

    other = SimStats()
    other.restore(snap)
    assert other.snapshot() == snap
    assert other == stats

    # Snapshots are value-comparable and independent of the live object.
    other.cycles += 1
    assert other.snapshot() != snap


def test_as_dict_includes_counters_and_rates():
    stats = SimStats(cycles=10, committed_instructions=5)
    data = stats.as_dict()
    for name in STAT_FIELDS:
        assert name in data
    assert data["ipc"] == 0.5
    assert "branch_mispredict_rate" in data
    assert "l1d_miss_rate" in data


def test_summary_mentions_key_counters():
    stats = SimStats(cycles=100, committed_instructions=42, branches=7,
                     l1d_hits=3, store_forwards=2)
    text = stats.summary()
    assert "cycles=100" in text
    assert "instructions=42" in text
    assert "store-forwards=2" in text


def test_slots_instances_have_no_dict_and_pickle():
    stats = SimStats(cycles=3)
    assert not hasattr(stats, "__dict__")
    clone = pickle.loads(pickle.dumps(stats))
    assert clone == stats
