"""Tests for the store queue, load queue and physical register file."""

import pytest

from repro.isa.errors import SimulatorAssertError
from repro.uarch.lsq import LoadQueue, StoreQueue
from repro.uarch.regfile import FreeList, PhysicalRegisterFile


def test_store_queue_allocate_release_round_trip():
    sq = StoreQueue(4)
    index = sq.allocate(seq=1, rip=10, upc=1, size=8)
    sq.set_address(index, 0x2000, demand=False, crash=None)
    sq.set_data(index, 42)
    sq.mark_committed(index)
    slot = sq.head_slot()
    assert slot.index == index and slot.committed
    sq.release_head()
    assert sq.occupancy == 0


def test_store_queue_overflow_raises():
    sq = StoreQueue(2)
    sq.allocate(1, 0, 1, 8)
    sq.allocate(2, 0, 1, 8)
    assert not sq.has_free()
    with pytest.raises(SimulatorAssertError):
        sq.allocate(3, 0, 1, 8)


def test_store_queue_forwarding_full_coverage():
    sq = StoreQueue(4)
    index = sq.allocate(seq=5, rip=0, upc=1, size=8)
    sq.set_address(index, 0x1000, False, None)
    sq.set_data(index, 0x1122334455667788)
    action, slot = sq.forwarding_source(seq=9, address=0x1000, size=8)
    assert action == "forward"
    assert slot.forward_value(0x1000, 8) == 0x1122334455667788
    # Partial read inside the store's range forwards the right bytes
    # (little-endian: bytes 2-3 of the stored value are 0x66 and 0x55).
    action, slot = sq.forwarding_source(seq=9, address=0x1002, size=2)
    assert action == "forward"
    assert slot.forward_value(0x1002, 2) == 0x5566


def test_store_queue_forwarding_stalls_on_partial_overlap_or_missing_data():
    sq = StoreQueue(4)
    index = sq.allocate(seq=5, rip=0, upc=1, size=4)
    sq.set_address(index, 0x1000, False, None)
    # Data not ready yet.
    action, _ = sq.forwarding_source(seq=9, address=0x1000, size=4)
    assert action == "stall"
    sq.set_data(index, 7)
    # Load wider than the store only partially overlaps.
    action, _ = sq.forwarding_source(seq=9, address=0x1000, size=8)
    assert action == "stall"


def test_store_queue_forwarding_ignores_younger_stores():
    sq = StoreQueue(4)
    index = sq.allocate(seq=20, rip=0, upc=1, size=8)
    sq.set_address(index, 0x1000, False, None)
    sq.set_data(index, 1)
    action, _ = sq.forwarding_source(seq=10, address=0x1000, size=8)
    assert action is None


def test_store_queue_picks_youngest_older_store():
    sq = StoreQueue(4)
    first = sq.allocate(seq=1, rip=0, upc=1, size=8)
    sq.set_address(first, 0x1000, False, None)
    sq.set_data(first, 111)
    second = sq.allocate(seq=2, rip=0, upc=1, size=8)
    sq.set_address(second, 0x1000, False, None)
    sq.set_data(second, 222)
    action, slot = sq.forwarding_source(seq=3, address=0x1000, size=8)
    assert action == "forward"
    assert slot.data == 222


def test_store_queue_squash_rewinds_tail_but_keeps_committed():
    sq = StoreQueue(4)
    first = sq.allocate(seq=1, rip=0, upc=1, size=8)
    sq.allocate(seq=5, rip=0, upc=1, size=8)
    sq.allocate(seq=6, rip=0, upc=1, size=8)
    sq.squash_younger(seq=1)
    assert sq.occupancy == 1
    assert sq.slots[first].valid


def test_store_queue_data_latch_persists_after_release():
    sq = StoreQueue(2)
    index = sq.allocate(seq=1, rip=0, upc=1, size=8)
    sq.set_address(index, 0x1000, False, None)
    sq.set_data(index, 0xDEAD)
    sq.mark_committed(index)
    sq.release_head()
    assert sq.slots[index].data == 0xDEAD
    sq.flip_bit(index, 0)
    assert sq.slots[index].data == 0xDEAD ^ 1


def test_store_queue_all_older_addresses_known():
    sq = StoreQueue(4)
    index = sq.allocate(seq=3, rip=0, upc=1, size=8)
    assert not sq.all_older_addresses_known(seq=10)
    assert sq.all_older_addresses_known(seq=2)
    sq.set_address(index, 0x1000, False, None)
    assert sq.all_older_addresses_known(seq=10)


def test_load_queue_occupancy_and_squash():
    lq = LoadQueue(2)
    lq.allocate(1)
    lq.allocate(5)
    assert not lq.has_free()
    lq.squash_younger(1)
    assert lq.occupancy == 1
    lq.release(1)
    assert lq.occupancy == 0
    with pytest.raises(SimulatorAssertError):
        lq.release(99)


def test_physical_register_file_ready_bits_and_flip():
    prf = PhysicalRegisterFile(64)
    prf.write(10, 0xF0)
    assert prf.is_ready(10)
    prf.mark_not_ready(10)
    assert not prf.is_ready(10)
    prf.flip_bit(10, 4)
    assert prf.read(10) == 0xE0
    with pytest.raises(ValueError):
        prf.flip_bit(10, 64)


def test_physical_register_file_requires_enough_registers():
    with pytest.raises(ValueError):
        PhysicalRegisterFile(8)


def test_free_list_allocate_release_and_rebuild():
    free_list = FreeList(32)
    assert len(free_list) == 32 - 16
    reg = free_list.allocate()
    assert reg == 16
    free_list.release(reg)
    free_list.rebuild(in_use=set(range(20)))
    assert len(free_list) == 12
    assert free_list.has_free(12)
    assert not free_list.has_free(13)


def test_free_list_underflow_raises():
    free_list = FreeList(17)
    free_list.allocate()
    with pytest.raises(SimulatorAssertError):
        free_list.allocate()
