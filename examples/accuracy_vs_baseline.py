"""Accuracy check: MeRLiN against a comprehensive injection campaign.

Declares a ``method="both"`` campaign so the session runs the comprehensive
baseline (every fault of the initial list injected) and MeRLiN over the
*same* shared fault list for the store queue, then prints the per-class
comparison, the grouping homogeneity (equation 1 of the paper) and the
Section 4.4.5 estimator statistics — a miniature of Figures 6, 14 and 15.

Run with:  python examples/accuracy_vs_baseline.py
"""

from __future__ import annotations

from repro.api import CampaignSpec, Session
from repro.core.metrics import coarse_homogeneity, fine_homogeneity, max_inaccuracy
from repro.core.reporting import TableReport
from repro.core.stats_model import analyze_groups
from repro.faults.classification import FaultEffectClass
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure

WORKLOAD = "qsort"
FAULTS = 150


def main() -> None:
    spec = CampaignSpec(
        workload=WORKLOAD,
        scale=3,
        structure=TargetStructure.SQ,
        config=MicroarchConfig().with_store_queue(16),
        faults=FAULTS,
        seed=5,
        method="both",
    )

    # ``execute`` returns the live result objects (per-fault outcomes and
    # grouping) that the homogeneity metrics need; the representative
    # injections are simulated once and shared between the two methods.
    execution = Session().execute(spec)
    merlin = execution.merlin
    comprehensive = execution.comprehensive

    table = TableReport(
        title=f"{WORKLOAD}: store-queue fault classification ({FAULTS} faults)",
        columns=["class", "comprehensive", "MeRLiN"],
    )
    for effect in FaultEffectClass:
        table.add_row([
            effect.value,
            f"{comprehensive.counts.fraction(effect) * 100:.2f}%",
            f"{merlin.counts_final.fraction(effect) * 100:.2f}%",
        ])
    table.add_note(
        f"comprehensive injections: {comprehensive.injections_performed}; "
        f"MeRLiN injections: {merlin.injections_performed} "
        f"({merlin.total_speedup:.1f}x speedup)"
    )
    print(table.render())
    print()
    print(f"max per-class difference: "
          f"{max_inaccuracy(comprehensive.counts, merlin.counts_final):.2f} percentile points")
    print(f"fine-grained homogeneity:  "
          f"{fine_homogeneity(merlin.grouped, comprehensive.outcomes):.3f}")
    print(f"coarse-grained homogeneity: "
          f"{coarse_homogeneity(merlin.grouped, comprehensive.outcomes):.3f}")
    print()
    print("Section 4.4.5 estimator statistics:")
    print(" ", analyze_groups(merlin.grouped, comprehensive.outcomes).describe())


if __name__ == "__main__":
    main()
