"""Assess a custom workload written in the textual assembly format.

Any program a user writes for the synthetic ISA can be assessed: this
example assembles a small dot-product kernel from text, registers it with a
:class:`repro.api.Session` so campaign specs can reference it by name,
profiles its vulnerable intervals with the ACE-like analysis, and runs
MeRLiN on the L1 data cache — demonstrating the public API end to end
without the bundled benchmark suite.

Run with:  python examples/custom_workload.py
"""

from __future__ import annotations

from repro.api import CampaignSpec, Session
from repro.core.ace import ace_like_avf
from repro.core.intervals import build_interval_set
from repro.isa import assemble
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure

DOT_PRODUCT = """
; dot product of two 32-element vectors, accumulated twice through memory
.data vec_a: words {values_a}
.data vec_b: words {values_b}
.data partials: space 256
    mov rdi, @vec_a
    mov rsi, @vec_b
    mov rbx, @partials
    mov rax, 0
    mov rcx, 0
loop:
    load rdx, [rdi]
    mul rdx, rdx, [rsi]
    store rdx, [rbx]
    add rax, rax, [rbx]
    add rdi, rdi, 8
    add rsi, rsi, 8
    add rbx, rbx, 8
    add rcx, rcx, 1
    br.lt rcx, 32, loop
    out rax
    halt
"""


def main() -> None:
    values_a = ", ".join(str((i * 3 + 1) % 17) for i in range(32))
    values_b = ", ".join(str((i * 5 + 2) % 13) for i in range(32))
    program = assemble(DOT_PRODUCT.format(values_a=values_a, values_b=values_b),
                       name="dot_product")

    # Register the custom program so specs can name it like a bundled
    # workload; the session then shares its golden run across campaigns.
    session = Session()
    session.register_program(program)
    spec = CampaignSpec(
        workload="dot_product",
        structure=TargetStructure.L1D,
        config=MicroarchConfig().with_l1d(16),
        faults=1_500,
        seed=11,
    )

    prepared = session.prepare(spec)
    golden = prepared.golden
    print(f"golden run: {golden.cycles} cycles, "
          f"{golden.committed_instructions} instructions, output {golden.result.output}")

    # ACE-like profile of the L1D data array.
    intervals = build_interval_set(golden.tracer, TargetStructure.L1D)
    print(f"L1D vulnerable intervals: {intervals.num_intervals} "
          f"(ACE-like AVF upper bound "
          f"{ace_like_avf(intervals, prepared.geometry, golden.cycles):.4f})")

    # MeRLiN campaign on the L1D, reusing the session-shared golden run.
    outcome = session.run(spec)
    merlin = outcome.merlin
    print(f"MeRLiN: {merlin.injections} injections for "
          f"{merlin.initial_faults} faults ({merlin.total_speedup:.1f}x), "
          f"AVF {merlin.avf:.4f}")
    print("classification:", dict(sorted(merlin.counts.items())))


if __name__ == "__main__":
    main()
