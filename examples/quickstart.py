"""Quickstart: assess the reliability of the physical register file with MeRLiN.

Declares the campaign as a :class:`repro.api.CampaignSpec`, runs it through
a :class:`repro.api.Session` (profiling, fault-list reduction, representative
injection) and prints the fault-effect classification, the AVF/FIT estimate
and the speedup over a comprehensive campaign of the same statistical
significance.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import CampaignSpec, Session
from repro.core.metrics import fit_rate
from repro.faults.classification import FaultEffectClass
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure


def main() -> None:
    # 1. Declare the campaign: workload, microarchitecture configuration
    #    (Table 1 with a 64-entry physical integer register file), target
    #    structure and fault budget.  The paper's baseline uses a 0.63%
    #    error margin at 99.8% confidence, i.e. ~60,000 faults; we use
    #    2,000 here so the example finishes in seconds.
    spec = CampaignSpec(
        workload="sha",
        structure=TargetStructure.RF,
        config=MicroarchConfig().with_register_file(64),
        faults=2_000,
        seed=7,
    )
    print(f"campaign: {spec.describe()}")

    # 2. Run the three phases through the session façade.
    outcome = Session().run(spec)
    merlin = outcome.merlin

    # 3. Report.
    print(f"workload:              {spec.workload}")
    print(f"golden run:            {outcome.golden_cycles} cycles")
    print(f"initial fault list:    {merlin.initial_faults} faults")
    print(f"pruned by ACE-like:    {merlin.pruned_faults} faults "
          f"({merlin.ace_speedup:.1f}x)")
    print(f"groups (RIP/uPC/byte): {merlin.num_groups}")
    print(f"injections performed:  {merlin.injections} "
          f"({merlin.total_speedup:.1f}x total speedup)")
    print()
    print("fault-effect classification (share of the initial fault list):")
    counts = merlin.classification()
    for effect in FaultEffectClass:
        print(f"  {effect.value:8s} {counts.fraction(effect) * 100:6.2f}%")
    print()
    print(f"AVF: {merlin.avf:.4f}   "
          f"FIT: {fit_rate(merlin.avf, outcome.total_bits):.3f} "
          f"(0.01 FIT/bit, {outcome.total_bits} bits)")


if __name__ == "__main__":
    main()
