"""Quickstart: assess the reliability of the physical register file with MeRLiN.

Builds one of the MiBench-like kernels, runs MeRLiN's three phases
(profiling, fault-list reduction, representative injection) and prints the
fault-effect classification, the AVF/FIT estimate and the speedup over a
comprehensive campaign of the same statistical significance.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.merlin import MerlinCampaign, MerlinConfig
from repro.core.metrics import fit_rate
from repro.faults.classification import FaultEffectClass
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure, structure_geometry
from repro.workloads import build_program


def main() -> None:
    # 1. Pick a workload and a microarchitecture configuration (Table 1 with
    #    a 64-entry physical integer register file).
    program = build_program("sha")
    config = MicroarchConfig().with_register_file(64)

    # 2. Configure MeRLiN: target structure, initial fault-list size and
    #    statistical parameters (the paper's baseline uses a 0.63% error
    #    margin at 99.8% confidence, i.e. ~60,000 faults; we use 2,000 here
    #    so the example finishes in seconds).
    merlin = MerlinCampaign(
        program,
        config,
        MerlinConfig(structure=TargetStructure.RF, initial_faults=2_000, seed=7),
    )

    # 3. Run the three phases.
    result = merlin.run()

    # 4. Report.
    geometry = structure_geometry(TargetStructure.RF, config)
    print(f"workload:              {program.name}")
    print(f"golden run:            {result.golden_cycles} cycles")
    print(f"initial fault list:    {result.grouped.initial_faults} faults")
    print(f"pruned by ACE-like:    {len(result.grouped.masked_fault_ids)} faults "
          f"({result.ace_speedup:.1f}x)")
    print(f"groups (RIP/uPC/byte): {result.grouped.num_groups}")
    print(f"injections performed:  {result.injections_performed} "
          f"({result.total_speedup:.1f}x total speedup)")
    print()
    print("fault-effect classification (share of the initial fault list):")
    for effect in FaultEffectClass:
        print(f"  {effect.value:8s} {result.counts_final.fraction(effect) * 100:6.2f}%")
    print()
    avf = result.avf
    print(f"AVF: {avf:.4f}   FIT: {fit_rate(avf, geometry.total_bits):.3f} "
          f"(0.01 FIT/bit, {geometry.total_bits} bits)")


if __name__ == "__main__":
    main()
