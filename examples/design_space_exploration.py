"""Design-space exploration: how does register-file sizing change reliability?

The paper motivates early microarchitecture-level reliability assessment as
a way to guide protection decisions.  This example uses MeRLiN to compare
the AVF and FIT of three physical register file sizes (256/128/64) across
several workloads — the same sweep as Figure 8/15/16 — and prints the kind
of table an architect would use to decide where ECC is worth its cost.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.core.merlin import MerlinCampaign, MerlinConfig
from repro.core.metrics import fit_rate
from repro.core.reporting import TableReport
from repro.uarch.config import MicroarchConfig
from repro.uarch.structures import TargetStructure, structure_geometry
from repro.workloads import build_program

WORKLOADS = ("sha", "qsort", "fft")
REGISTER_FILE_SIZES = (256, 128, 64)
FAULTS_PER_CAMPAIGN = 800


def main() -> None:
    table = TableReport(
        title="Register-file sizing: AVF / FIT per configuration (MeRLiN estimates)",
        columns=["workload", "registers", "injections", "speedup", "AVF", "FIT"],
    )
    for name in WORKLOADS:
        program = build_program(name)
        for num_regs in REGISTER_FILE_SIZES:
            config = MicroarchConfig().with_register_file(num_regs)
            campaign = MerlinCampaign(
                program, config,
                MerlinConfig(structure=TargetStructure.RF,
                             initial_faults=FAULTS_PER_CAMPAIGN, seed=3),
            )
            result = campaign.run()
            geometry = structure_geometry(TargetStructure.RF, config)
            table.add_row([
                name,
                num_regs,
                result.injections_performed,
                round(result.total_speedup, 1),
                round(result.avf, 4),
                round(fit_rate(result.avf, geometry.total_bits), 3),
            ])
    table.add_note(
        "Smaller register files concentrate live values and raise the AVF, but "
        "larger ones expose more raw bits: the FIT column is what a designer "
        "would weigh against the area/power cost of protection."
    )
    print(table.render())


if __name__ == "__main__":
    main()
