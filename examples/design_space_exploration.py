"""Design-space exploration: how does register-file sizing change reliability?

The paper motivates early microarchitecture-level reliability assessment as
a way to guide protection decisions.  This example expands a workloads x
register-file-sizes cross-product with :func:`repro.api.sweep`, fans it out
through an execution engine and prints the kind of table an architect would
use to decide where ECC is worth its cost — the same sweep as Figure
8/15/16.  Swap ``SerialEngine`` for ``ProcessPoolEngine`` to use every
core; the results are bit-identical.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.api import SerialEngine, config_axis, sweep
from repro.core.metrics import fit_rate
from repro.core.reporting import TableReport

WORKLOADS = ("sha", "qsort", "fft")
REGISTER_FILE_SIZES = (256, 128, 64)
FAULTS_PER_CAMPAIGN = 800


def main() -> None:
    specs = sweep(
        WORKLOADS,
        structures=("RF",),
        configs=config_axis(registers=REGISTER_FILE_SIZES),
        faults=FAULTS_PER_CAMPAIGN,
        seed=3,
    )
    outcomes = SerialEngine().run(specs)

    table = TableReport(
        title="Register-file sizing: AVF / FIT per configuration (MeRLiN estimates)",
        columns=["workload", "registers", "injections", "speedup", "AVF", "FIT"],
    )
    for outcome in outcomes:
        merlin = outcome.merlin
        table.add_row([
            outcome.spec.workload,
            outcome.spec.config.num_phys_int_regs,
            merlin.injections,
            round(merlin.total_speedup, 1),
            round(merlin.avf, 4),
            round(fit_rate(merlin.avf, outcome.total_bits), 3),
        ])
    table.add_note(
        "Smaller register files concentrate live values and raise the AVF, but "
        "larger ones expose more raw bits: the FIT column is what a designer "
        "would weigh against the area/power cost of protection."
    )
    print(table.render())


if __name__ == "__main__":
    main()
